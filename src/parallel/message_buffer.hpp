// MessageBuffer: per-fragment-pair staging for boundary messages, the
// exchange half of the bulk-synchronous substep (local-relax, then ghost
// exchange) the fragment engine runs.
//
// Layout is an F x F grid of lanes, double-buffered. During a relax phase
// each fragment appends to its OUT lanes — outbox(from, to) is written
// only by fragment `from`'s worker, so no lane is ever contended. At the
// substep boundary the (sequential) coordinator flips the epoch; the relax
// phase's out-lanes become the exchange phase's in-lanes, and each
// destination fragment drains inbox(from, to) for every `from` — again
// single-reader per lane. Lanes keep their capacity across substeps AND
// across queries, so a warm engine stages messages without allocating.
//
// The payload is a template parameter; the fragment engine's messages are
// DistMessage — (global ghost vertex, tentative distance) relaxations.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/types.hpp"

namespace rs {

/// A staged boundary relaxation: "owner of `vertex`: your vertex may be
/// reachable at distance `dist`".
struct DistMessage {
  Vertex vertex;
  Dist dist;
};

template <typename Msg>
class MessageBuffer {
 public:
  /// Sizes the grid for `fragments` fragments and clears every lane in
  /// both epochs (capacities kept). Engines call this once per run.
  void reset(std::size_t fragments) {
    fragments_ = fragments;
    const std::size_t lanes = fragments * fragments;
    for (auto& epoch : lanes_) {
      if (epoch.size() < lanes) epoch.resize(lanes);
      for (auto& lane : epoch) lane.clear();
    }
    cur_ = 0;
  }

  std::size_t num_fragments() const { return fragments_; }

  /// Staging lane for messages from fragment `from` to fragment `to` in
  /// the current epoch. Single-writer: only `from`'s worker may append.
  std::vector<Msg>& outbox(std::size_t from, std::size_t to) {
    return lanes_[cur_][from * fragments_ + to];
  }

  /// Flips the epoch at the substep boundary: what was staged becomes
  /// readable via inbox(), and outbox() lanes start empty for the next
  /// phase (the previous exchange drained and cleared them). Sequential
  /// coordinator only.
  void swap_epoch() { cur_ ^= 1; }

  /// The previous epoch's staging lane from `from` to `to`. The draining
  /// fragment (`to`'s worker) must clear() it after consuming — that is
  /// what empties the lane for its next life as an outbox.
  std::vector<Msg>& inbox(std::size_t from, std::size_t to) {
    return lanes_[cur_ ^ 1][from * fragments_ + to];
  }

 private:
  std::size_t fragments_ = 0;
  std::size_t cur_ = 0;
  std::vector<std::vector<Msg>> lanes_[2];  // [epoch][from * F + to]
};

}  // namespace rs
