#include "parallel/primitives.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

namespace rs {

namespace {
std::atomic<int>& worker_count() {
  static std::atomic<int> count{[] {
    // RS_THREADS (if set) wins over the OpenMP default.
    if (const char* env = std::getenv("RS_THREADS")) {
      const int v = std::atoi(env);
      if (v >= 1) return v;
    }
    return omp_get_max_threads();
  }()};
  return count;
}
}  // namespace

int num_workers() { return worker_count().load(std::memory_order_relaxed); }

void set_num_workers(int n) {
  if (n < 1) n = 1;
  worker_count().store(n, std::memory_order_relaxed);
  omp_set_num_threads(n);
}

std::int64_t env_int64(const char* name, std::int64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(env, &end, 10);
  if (end == env) return fallback;
  return static_cast<std::int64_t>(v);
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* env = std::getenv(name);
  return (env == nullptr || *env == '\0') ? fallback : std::string(env);
}

}  // namespace rs
