#include "parallel/primitives.hpp"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace rs {

int parse_count_env(const char* name, const char* value, int fallback) {
  // Unset / empty behaves exactly like an absent variable (CI's
  // default-thread matrix leg sets RS_THREADS=""), silently.
  if (value == nullptr || *value == '\0') return fallback;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(value, &end, 10);
  const bool overflowed = errno == ERANGE;
  if (end == value || *end != '\0' || overflowed || v < 1 ||
      v > kMaxWorkers) {
    // Garbage, trailing junk, non-positive, or overflow: warn once per
    // occurrence and keep the default instead of silently misconfiguring
    // the count. (Don't print `fallback` — some callers pass a sentinel
    // meaning "leave the current setting alone".)
    std::fprintf(stderr,
                 "[rs] warning: %s=\"%s\" is not a count in [1, %d]; "
                 "falling back to the default\n",
                 name, value, kMaxWorkers);
    return fallback;
  }
  return static_cast<int>(v);
}

int parse_worker_count(const char* value, int fallback) {
  return parse_count_env("RS_THREADS", value, fallback);
}

namespace {
std::atomic<int>& worker_count() {
  static std::atomic<int> count{[] {
    // RS_THREADS (if set and valid) wins over the OpenMP default.
    return parse_worker_count(std::getenv("RS_THREADS"),
                              omp_get_max_threads());
  }()};
  return count;
}
}  // namespace

int num_workers() { return worker_count().load(std::memory_order_relaxed); }

void set_num_workers(int n) {
  if (n < 1) n = 1;
  worker_count().store(n, std::memory_order_relaxed);
  omp_set_num_threads(n);
}

std::int64_t env_int64(const char* name, std::int64_t fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(env, &end, 10);
  if (end == env) return fallback;
  return static_cast<std::int64_t>(v);
}

std::string env_string(const char* name, const std::string& fallback) {
  const char* env = std::getenv(name);
  return (env == nullptr || *env == '\0') ? fallback : std::string(env);
}

}  // namespace rs
