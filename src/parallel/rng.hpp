// Deterministic splittable random numbers.
//
// Graph generators and weight assignment must be reproducible regardless of
// thread schedule, so every random decision is a pure hash of (seed, index)
// rather than a draw from shared mutable state.
#pragma once

#include <cstdint>

namespace rs {

/// Stateless mixing function (splitmix64 finalizer). Good avalanche; cheap.
inline std::uint64_t hash64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Deterministic PRNG addressed by (seed, stream, index).
class SplitRng {
 public:
  explicit SplitRng(std::uint64_t seed)
      : seed_(hash64(seed ^ 0xdb91f34c8a5e02d7ull)) {}

  /// The i-th value of stream `stream`; pure function of (seed, stream, i).
  std::uint64_t get(std::uint64_t stream, std::uint64_t i) const {
    return hash64(seed_ ^ hash64(stream * 0x9ddfea08eb382d69ull + i));
  }

  /// Uniform in [0, bound) — bound > 0. Uses 64-bit multiply-shift.
  std::uint64_t bounded(std::uint64_t stream, std::uint64_t i,
                        std::uint64_t bound) const {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(get(stream, i)) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform(std::uint64_t stream, std::uint64_t i) const {
    return static_cast<double>(get(stream, i) >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t seed_;
};

}  // namespace rs
