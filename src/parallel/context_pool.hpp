// Per-worker object pool for batch schedulers.
//
// A WorkerPool hands each OpenMP worker its own slot (a QueryContext, a
// scratch struct, ...) so a source-parallel batch runs with zero sharing
// and zero per-query allocation once the slots are warm. Slots live in a
// deque: growth never moves existing elements, so references handed out by
// at() stay valid across ensure() calls.
//
// Concurrency contract: ensure() is called from one thread before the
// parallel region; inside the region each worker touches only at(its own
// id). The pool itself performs no locking — callers that share a pool
// across batches serialize on their own mutex (see SsspEngine).
#pragma once

#include <cstddef>
#include <deque>

namespace rs {

template <typename T>
class WorkerPool {
 public:
  /// Grows the pool to at least `workers` slots (default-constructed in
  /// place). Never shrinks: a pool stays warm at its high-water mark.
  void ensure(std::size_t workers) {
    while (slots_.size() < workers) slots_.emplace_back();
  }

  /// Slot for `worker`; must be < size(). Stable address for the lifetime
  /// of the pool.
  T& at(std::size_t worker) { return slots_[worker]; }

  std::size_t size() const { return slots_.size(); }

 private:
  std::deque<T> slots_;
};

}  // namespace rs
