// Atomic priority-write (WriteMin), the PRAM primitive Radius-Stepping's
// substeps are built on: concurrent relaxations of the same vertex combine
// to the minimum, making the result independent of scheduling order.
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>

namespace rs {

/// Atomically performs `cell = min(cell, value)`.
/// Returns true iff this call strictly lowered the stored value.
template <typename T>
bool write_min(std::atomic<T>& cell, T value) {
  static_assert(std::is_integral_v<T>, "write_min needs an integral type");
  T cur = cell.load(std::memory_order_relaxed);
  while (value < cur) {
    if (cell.compare_exchange_weak(cur, value, std::memory_order_relaxed,
                                   std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

/// Same, additionally reporting the value the cell held immediately before
/// this call's successful lowering in `before` (unspecified when returning
/// false). Exactly one concurrent caller observes any given prior value:
/// the CAS that replaces it. This is what makes exactly-once first-touch
/// detection free — the winner of the kInfDist -> finite transition is the
/// unique caller that sees `before == kInfDist`.
template <typename T>
bool write_min(std::atomic<T>& cell, T value, T& before) {
  static_assert(std::is_integral_v<T>, "write_min needs an integral type");
  T cur = cell.load(std::memory_order_relaxed);
  while (value < cur) {
    if (cell.compare_exchange_weak(cur, value, std::memory_order_relaxed,
                                   std::memory_order_relaxed)) {
      before = cur;
      return true;
    }
  }
  return false;
}

/// Atomically performs `cell = max(cell, value)`; true iff it raised it.
template <typename T>
bool write_max(std::atomic<T>& cell, T value) {
  static_assert(std::is_integral_v<T>, "write_max needs an integral type");
  T cur = cell.load(std::memory_order_relaxed);
  while (value > cur) {
    if (cell.compare_exchange_weak(cur, value, std::memory_order_relaxed,
                                   std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

/// Packs a (priority, payload) pair into one uint64 so that write_min on the
/// packed word implements "min by priority, tie-break by payload".
/// Priority must fit in 40 bits, payload in 24 bits.
struct PackedMin {
  static constexpr int kPayloadBits = 24;
  static constexpr std::uint64_t kPayloadMask = (1ull << kPayloadBits) - 1;

  static std::uint64_t pack(std::uint64_t priority, std::uint32_t payload) {
    return (priority << kPayloadBits) | (payload & kPayloadMask);
  }
  static std::uint64_t priority(std::uint64_t packed) {
    return packed >> kPayloadBits;
  }
  static std::uint32_t payload(std::uint64_t packed) {
    return static_cast<std::uint32_t>(packed & kPayloadMask);
  }
};

}  // namespace rs
