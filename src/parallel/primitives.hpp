// Parallel primitives used throughout the library.
//
// All primitives are OpenMP-backed and degrade gracefully to sequential
// execution when OpenMP runs with one thread. Grain sizes keep per-task
// work large enough that scheduling overhead never dominates; callers can
// tune them but the defaults are sensible for the graph sizes in this repo.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <numeric>
#include <string>
#include <utility>
#include <vector>

#include <omp.h>

namespace rs {

/// Returns the number of worker threads the parallel primitives will use.
int num_workers();

/// Sets the number of worker threads (clamped to >= 1). Affects all
/// subsequent parallel primitives. Thread-safe with respect to itself.
void set_num_workers(int n);

/// Upper bound accepted for RS_THREADS — far above any sane machine, but
/// finite so overflowed or absurd values are rejected, not clamped.
inline constexpr int kMaxWorkers = 8192;

/// Parses an RS_THREADS-style worker-count value. Unset/empty returns
/// `fallback` silently; garbage, trailing junk, non-positive values, and
/// anything outside [1, kMaxWorkers] (including integer overflow) returns
/// `fallback` with a warning on stderr. Exposed for tests.
int parse_worker_count(const char* value, int fallback);

/// Shared parser behind every RS_*-count environment knob (RS_THREADS,
/// RS_FRAGMENTS): same grammar and range as parse_worker_count, with the
/// warning naming `name` so a misconfigured variable is identifiable.
int parse_count_env(const char* name, const char* value, int fallback);

/// Reads an integer environment variable, returning `fallback` when unset
/// or unparsable. Used by benches for RS_SOURCES / RS_THREADS overrides.
std::int64_t env_int64(const char* name, std::int64_t fallback);

/// Reads a string environment variable, returning `fallback` when unset.
std::string env_string(const char* name, const std::string& fallback);

namespace detail {
constexpr std::size_t kDefaultGrain = 1024;
}  // namespace detail

/// Applies `f(i)` for all i in [begin, end) in parallel.
template <typename F>
void parallel_for(std::size_t begin, std::size_t end, F&& f,
                  std::size_t grain = detail::kDefaultGrain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (n <= grain || num_workers() == 1) {
    for (std::size_t i = begin; i < end; ++i) f(i);
    return;
  }
#pragma omp parallel for schedule(dynamic, 64)
  for (std::int64_t i = static_cast<std::int64_t>(begin);
       i < static_cast<std::int64_t>(end); ++i) {
    f(static_cast<std::size_t>(i));
  }
}

/// Parallel reduction of `f(i)` over [begin, end) with combiner `combine`
/// and identity `id`. `combine` must be associative and commutative.
template <typename T, typename F, typename Combine>
T parallel_reduce(std::size_t begin, std::size_t end, T id, F&& f,
                  Combine&& combine,
                  std::size_t grain = detail::kDefaultGrain) {
  if (begin >= end) return id;
  const std::size_t n = end - begin;
  if (n <= grain || num_workers() == 1) {
    T acc = id;
    for (std::size_t i = begin; i < end; ++i) acc = combine(acc, f(i));
    return acc;
  }
  const int nw = num_workers();
  std::vector<T> partial(static_cast<std::size_t>(nw), id);
#pragma omp parallel num_threads(nw)
  {
    const int tid = omp_get_thread_num();
    T acc = id;
#pragma omp for schedule(static) nowait
    for (std::int64_t i = static_cast<std::int64_t>(begin);
         i < static_cast<std::int64_t>(end); ++i) {
      acc = combine(acc, f(static_cast<std::size_t>(i)));
    }
    partial[static_cast<std::size_t>(tid)] = acc;
  }
  T acc = id;
  for (const T& p : partial) acc = combine(acc, p);
  return acc;
}

/// Parallel min-reduction of f(i) over [begin, end).
template <typename T, typename F>
T parallel_min(std::size_t begin, std::size_t end, T id, F&& f) {
  return parallel_reduce(
      begin, end, id, std::forward<F>(f),
      [](const T& a, const T& b) { return a < b ? a : b; });
}

/// Parallel sum-reduction of f(i) over [begin, end).
template <typename T, typename F>
T parallel_sum(std::size_t begin, std::size_t end, F&& f) {
  return parallel_reduce(begin, end, T{}, std::forward<F>(f),
                         [](const T& a, const T& b) { return a + b; });
}

/// Exclusive prefix sum of `in`; returns the total. `out` may alias `in`.
/// out[i] = in[0] + ... + in[i-1].
template <typename T>
T exclusive_scan(const std::vector<T>& in, std::vector<T>& out) {
  const std::size_t n = in.size();
  out.resize(n);
  const int nw = num_workers();
  if (n < 4 * detail::kDefaultGrain || nw == 1) {
    T acc{};
    for (std::size_t i = 0; i < n; ++i) {
      T v = in[i];
      out[i] = acc;
      acc += v;
    }
    return acc;
  }
  const std::size_t nblocks = static_cast<std::size_t>(nw);
  const std::size_t block = (n + nblocks - 1) / nblocks;
  std::vector<T> block_sum(nblocks, T{});
#pragma omp parallel for schedule(static, 1)
  for (std::int64_t b = 0; b < static_cast<std::int64_t>(nblocks); ++b) {
    const std::size_t lo = static_cast<std::size_t>(b) * block;
    const std::size_t hi = std::min(n, lo + block);
    T acc{};
    for (std::size_t i = lo; i < hi; ++i) acc += in[i];
    block_sum[static_cast<std::size_t>(b)] = acc;
  }
  std::vector<T> block_off(nblocks, T{});
  T total{};
  for (std::size_t b = 0; b < nblocks; ++b) {
    block_off[b] = total;
    total += block_sum[b];
  }
#pragma omp parallel for schedule(static, 1)
  for (std::int64_t b = 0; b < static_cast<std::int64_t>(nblocks); ++b) {
    const std::size_t lo = static_cast<std::size_t>(b) * block;
    const std::size_t hi = std::min(n, lo + block);
    T acc = block_off[static_cast<std::size_t>(b)];
    for (std::size_t i = lo; i < hi; ++i) {
      T v = in[i];
      out[i] = acc;
      acc += v;
    }
  }
  return total;
}

/// Keeps elements of `in` whose index satisfies `pred(i)`, preserving order.
template <typename T, typename Pred>
std::vector<T> pack(const std::vector<T>& in, Pred&& pred) {
  const std::size_t n = in.size();
  std::vector<std::uint64_t> flags(n);
  parallel_for(0, n, [&](std::size_t i) { flags[i] = pred(i) ? 1 : 0; });
  std::vector<std::uint64_t> offs;
  const std::uint64_t total = exclusive_scan(flags, offs);
  std::vector<T> out(total);
  parallel_for(0, n, [&](std::size_t i) {
    if (flags[i]) out[offs[i]] = in[i];
  });
  return out;
}

/// Produces the indices i in [0, n) with `pred(i)` true, in increasing order.
template <typename Pred>
std::vector<std::uint32_t> pack_index(std::size_t n, Pred&& pred) {
  std::vector<std::uint64_t> flags(n);
  parallel_for(0, n, [&](std::size_t i) { flags[i] = pred(i) ? 1 : 0; });
  std::vector<std::uint64_t> offs;
  const std::uint64_t total = exclusive_scan(flags, offs);
  std::vector<std::uint32_t> out(total);
  parallel_for(0, n, [&](std::size_t i) {
    if (flags[i]) out[offs[i]] = static_cast<std::uint32_t>(i);
  });
  return out;
}

namespace detail {
template <typename It, typename Cmp>
void merge_sort_tasks(It lo, It hi, Cmp& cmp, int depth) {
  const auto n = static_cast<std::size_t>(hi - lo);
  if (depth <= 0 || n < 8192) {
    std::sort(lo, hi, cmp);
    return;
  }
  It mid = lo + static_cast<std::ptrdiff_t>(n / 2);
#pragma omp task shared(cmp)
  merge_sort_tasks(lo, mid, cmp, depth - 1);
  merge_sort_tasks(mid, hi, cmp, depth - 1);
#pragma omp taskwait
  std::inplace_merge(lo, mid, hi, cmp);
}
}  // namespace detail

/// Parallel comparison sort (task-based merge sort; stable enough for our
/// deterministic pipelines because comparators are total orders here).
template <typename T, typename Cmp = std::less<T>>
void parallel_sort(std::vector<T>& v, Cmp cmp = Cmp{}) {
  if (v.size() < 16384 || num_workers() == 1) {
    std::sort(v.begin(), v.end(), cmp);
    return;
  }
  int depth = 0;
  for (int w = num_workers(); (1 << depth) < 4 * w; ++depth) {
  }
#pragma omp parallel num_threads(num_workers())
#pragma omp single
  detail::merge_sort_tasks(v.begin(), v.end(), cmp, depth);
}

}  // namespace rs
