// Pairing heap with O(1) amortized decrease-key.
//
// Stands in for the Fibonacci heap the paper's preprocessing analysis
// charges (Lemma 4.2): pairing heaps share the O(1) insert / decrease-key
// and O(log n) amortized extract-min profile and are faster in practice.
// Nodes are pool-allocated and addressed by dense vertex id.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "graph/types.hpp"

namespace rs {

template <typename Key>
class PairingHeap {
 public:
  explicit PairingHeap(std::size_t capacity)
      : nodes_(capacity) {}

  bool empty() const { return root_ == kNull; }
  std::size_t size() const { return size_; }
  bool contains(Vertex id) const { return nodes_[id].in_heap; }

  Key key_of(Vertex id) const {
    assert(contains(id));
    return nodes_[id].key;
  }

  Vertex min_id() const {
    assert(!empty());
    return root_;
  }
  Key min_key() const {
    assert(!empty());
    return nodes_[root_].key;
  }

  /// Inserts a new id or lowers its key; raising is rejected (returns false).
  bool insert_or_decrease(Vertex id, Key key) {
    Node& nd = nodes_[id];
    if (!nd.in_heap) {
      nd = Node{};
      nd.key = key;
      nd.in_heap = true;
      root_ = (root_ == kNull) ? id : meld(root_, id);
      ++size_;
      return true;
    }
    if (key >= nd.key) return false;
    nd.key = key;
    if (id == root_) return true;
    detach(id);
    root_ = meld(root_, id);
    return true;
  }

  struct Entry {
    Key key;
    Vertex id;
  };

  Entry extract_min() {
    assert(!empty());
    const Vertex top = root_;
    const Entry out{nodes_[top].key, top};
    root_ = two_pass_merge(nodes_[top].child);
    if (root_ != kNull) nodes_[root_].parent = kNull;
    nodes_[top].in_heap = false;
    nodes_[top].child = kNull;
    --size_;
    return out;
  }

  void clear() {
    for (Node& nd : nodes_) nd = Node{};
    root_ = kNull;
    size_ = 0;
  }

 private:
  static constexpr Vertex kNull = kNoVertex;

  struct Node {
    Key key{};
    Vertex parent = kNull;
    Vertex child = kNull;    // leftmost child
    Vertex sibling = kNull;  // next sibling to the right
    bool in_heap = false;
  };

  /// Links two roots, returning the smaller one.
  // GCC 12's -Warray-bounds sees the kNull sentinel (0xffffffff) flow in as
  // a constant on the never-taken root_ == kNull branch of callers and
  // reports an out-of-bounds subscript; every call site guards against
  // kNull, so the access cannot happen.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Warray-bounds"
  Vertex meld(Vertex a, Vertex b) {
    if (nodes_[b].key < nodes_[a].key) std::swap(a, b);
    // b becomes the leftmost child of a.
    nodes_[b].parent = a;
    nodes_[b].sibling = nodes_[a].child;
    nodes_[a].child = b;
    return a;
  }
#pragma GCC diagnostic pop

  /// Unlinks `id` from its parent's child list.
  void detach(Vertex id) {
    const Vertex parent = nodes_[id].parent;
    assert(parent != kNull);
    Vertex cur = nodes_[parent].child;
    if (cur == id) {
      nodes_[parent].child = nodes_[id].sibling;
    } else {
      while (nodes_[cur].sibling != id) cur = nodes_[cur].sibling;
      nodes_[cur].sibling = nodes_[id].sibling;
    }
    nodes_[id].parent = kNull;
    nodes_[id].sibling = kNull;
  }

  /// Standard two-pass pairing: left-to-right pairwise meld, then
  /// right-to-left accumulate.
  Vertex two_pass_merge(Vertex first) {
    if (first == kNull) return kNull;
    scratch_.clear();
    Vertex cur = first;
    while (cur != kNull) {
      const Vertex a = cur;
      const Vertex b = nodes_[a].sibling;
      if (b == kNull) {
        nodes_[a].sibling = kNull;
        nodes_[a].parent = kNull;
        scratch_.push_back(a);
        break;
      }
      cur = nodes_[b].sibling;
      nodes_[a].sibling = kNull;
      nodes_[b].sibling = kNull;
      nodes_[a].parent = kNull;
      nodes_[b].parent = kNull;
      scratch_.push_back(meld(a, b));
    }
    Vertex acc = scratch_.back();
    for (std::size_t i = scratch_.size() - 1; i-- > 0;) {
      acc = meld(scratch_[i], acc);
    }
    return acc;
  }

  std::vector<Node> nodes_;
  std::vector<Vertex> scratch_;
  Vertex root_ = kNull;
  std::size_t size_ = 0;
};

}  // namespace rs
