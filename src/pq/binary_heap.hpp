// Indexed d-ary min-heap with decrease-key.
//
// The workhorse priority queue for Dijkstra's algorithm and the truncated
// ball search. Keys are addressed by a dense integer id in [0, capacity);
// the position index makes decrease-key O(log n) without handles.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "graph/types.hpp"

namespace rs {

/// Min-heap over (key, id) with id-addressable decrease-key.
/// Arity 4 by default: shallower than binary, sift-down still cheap.
template <typename Key, int Arity = 4>
class IndexedHeap {
  static_assert(Arity >= 2);

 public:
  explicit IndexedHeap(std::size_t capacity)
      : pos_(capacity, kAbsent) {}

  /// Grows the id space to at least `capacity`. Existing entries keep
  /// their positions; new ids start absent. Lets a pooled heap be reused
  /// across graphs of different sizes without reallocation churn.
  void reserve(std::size_t capacity) {
    if (capacity > pos_.size()) pos_.resize(capacity, kAbsent);
  }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }
  bool contains(Vertex id) const { return pos_[id] != kAbsent; }

  Key key_of(Vertex id) const {
    assert(contains(id));
    return heap_[pos_[id]].key;
  }

  /// Inserts a new id or lowers its key; raising a key is rejected (returns
  /// false, no change) — Dijkstra never needs it.
  bool insert_or_decrease(Vertex id, Key key) {
    const std::uint32_t p = pos_[id];
    if (p == kAbsent) {
      heap_.push_back({key, id});
      pos_[id] = static_cast<std::uint32_t>(heap_.size() - 1);
      sift_up(heap_.size() - 1);
      return true;
    }
    if (key >= heap_[p].key) return false;
    heap_[p].key = key;
    sift_up(p);
    return true;
  }

  struct Entry {
    Key key;
    Vertex id;
  };

  Entry min() const {
    assert(!empty());
    return heap_.front();
  }

  Entry extract_min() {
    assert(!empty());
    const Entry top = heap_.front();
    remove_at(0);
    return top;
  }

  /// Removes an arbitrary element by id. O(log n).
  void remove(Vertex id) {
    assert(contains(id));
    remove_at(pos_[id]);
  }

  void clear() {
    for (const Entry& e : heap_) pos_[e.id] = kAbsent;
    heap_.clear();
  }

 private:
  static constexpr std::uint32_t kAbsent = 0xffffffffu;

  void remove_at(std::size_t i) {
    pos_[heap_[i].id] = kAbsent;
    if (i + 1 != heap_.size()) {
      heap_[i] = heap_.back();
      pos_[heap_[i].id] = static_cast<std::uint32_t>(i);
      heap_.pop_back();
      // The moved element may need to go either way.
      sift_down(i);
      sift_up(i);
    } else {
      heap_.pop_back();
    }
  }

  void sift_up(std::size_t i) {
    Entry e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / Arity;
      if (heap_[parent].key <= e.key) break;
      heap_[i] = heap_[parent];
      pos_[heap_[i].id] = static_cast<std::uint32_t>(i);
      i = parent;
    }
    heap_[i] = e;
    pos_[e.id] = static_cast<std::uint32_t>(i);
  }

  void sift_down(std::size_t i) {
    Entry e = heap_[i];
    const std::size_t n = heap_.size();
    while (true) {
      const std::size_t first = i * Arity + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = std::min(first + Arity, n);
      for (std::size_t c = first + 1; c < last; ++c) {
        if (heap_[c].key < heap_[best].key) best = c;
      }
      if (heap_[best].key >= e.key) break;
      heap_[i] = heap_[best];
      pos_[heap_[i].id] = static_cast<std::uint32_t>(i);
      i = best;
    }
    heap_[i] = e;
    pos_[e.id] = static_cast<std::uint32_t>(i);
  }

  std::vector<Entry> heap_;
  std::vector<std::uint32_t> pos_;
};

}  // namespace rs
