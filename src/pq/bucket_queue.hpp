// Monotone bucket queue — the structure Meyer & Sanders' Delta-stepping
// keeps its frontier in. Buckets hold vertices by floor(dist / delta) and
// the cursor only moves forward (extracted priorities are nondecreasing).
// Live keys always lie within max_edge_weight of the cursor's lower bound,
// so a cyclic array of ceil(L/delta) + 3 buckets suffices regardless of the
// total distance range.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

#include "graph/types.hpp"

namespace rs {

class BucketQueue {
 public:
  /// `delta` is the bucket width; `max_edge_weight` (the paper's L) bounds
  /// how far above the current bucket a relaxation can land.
  BucketQueue(std::size_t capacity, Dist delta, Dist max_edge_weight)
      : delta_(delta),
        num_buckets_(static_cast<std::size_t>(max_edge_weight / delta) + 3),
        buckets_(num_buckets_),
        where_(capacity, kAbsent) {
    assert(delta > 0);
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  bool contains(Vertex id) const { return where_[id] != kAbsent; }

  std::size_t bucket_of(Dist key) const {
    return static_cast<std::size_t>(key / delta_);
  }

  /// Inserts `id` with `key`, or moves it if the key decreased into an
  /// earlier bucket. Keys below the current cursor are clamped into the
  /// cursor bucket (delta-stepping re-relaxes inside the current bucket).
  void insert_or_decrease(Vertex id, Dist key) {
    const std::size_t b = std::max(bucket_of(key), cursor_);
    assert(b < cursor_ + num_buckets_ && "key beyond cyclic bucket span");
    const std::size_t cur = where_[id];
    if (cur == b) return;
    if (cur != kAbsent) {
      if (b > cur) return;  // never move backwards in priority
      remove_from_bucket(id, cur);
    } else {
      ++size_;
    }
    buckets_[b % num_buckets_].push_back(id);
    where_[id] = b;
  }

  void remove(Vertex id) {
    const std::size_t cur = where_[id];
    if (cur == kAbsent) return;
    remove_from_bucket(id, cur);
    where_[id] = kAbsent;
    --size_;
  }

  /// Index of the first non-empty bucket (advances the cursor to it).
  /// Pre: !empty().
  std::size_t next_bucket() {
    assert(!empty());
    while (buckets_[cursor_ % num_buckets_].empty()) ++cursor_;
    return cursor_;
  }

  /// Moves the contents of bucket `b` out, clearing it.
  std::vector<Vertex> take_bucket(std::size_t b) {
    std::vector<Vertex>& src = buckets_[b % num_buckets_];
    std::vector<Vertex> out;
    out.swap(src);
    for (const Vertex id : out) where_[id] = kAbsent;
    size_ -= out.size();
    return out;
  }

 private:
  static constexpr std::size_t kAbsent =
      std::numeric_limits<std::size_t>::max();

  void remove_from_bucket(Vertex id, std::size_t b) {
    std::vector<Vertex>& vec = buckets_[b % num_buckets_];
    for (std::size_t i = 0; i < vec.size(); ++i) {
      if (vec[i] == id) {
        vec[i] = vec.back();
        vec.pop_back();
        return;
      }
    }
    assert(false && "id not in claimed bucket");
  }

  Dist delta_;
  std::size_t num_buckets_;
  std::vector<std::vector<Vertex>> buckets_;
  std::vector<std::size_t> where_;
  std::size_t cursor_ = 0;
  std::size_t size_ = 0;
};

}  // namespace rs
