// Scale-free network analysis (the paper's webgraph scenario) on the
// serving API: on graphs with hub vertices, Radius-Stepping needs very
// few steps and the DP heuristic adds almost no shortcut edges because
// the hubs already flatten the shortest-path trees (Section 5.2).
//
// The serving twist: "how far is user B from user A" is a targeted
// request, not a full SSSP — serve() stops as soon as the asked-about
// users are settled, which on a hub graph is usually after one or two
// levels.
//
//   ./social_reachability [n=20000]
#include <cstdio>
#include <cstdlib>

#include "core/engine.hpp"
#include "core/radii.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "shortcut/shortcut.hpp"

int main(int argc, char** argv) {
  using namespace rs;
  const Vertex n = argc > 1 ? static_cast<Vertex>(std::atoi(argv[1])) : 20000;

  const Graph g = gen::barabasi_albert(n, /*edges_per_vertex=*/7, /*seed=*/3);
  const DegreeStats deg = degree_stats(g);
  std::printf("scale-free network: %u vertices, %llu edges, "
              "max degree %llu (hub), avg %.2f\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_undirected_edges()),
              static_cast<unsigned long long>(deg.max), deg.mean);

  // Engine over the raw unit-weight graph (no shortcuts), so the BFS-
  // regime kUnweighted engine applies: hop distances, radius-guided steps.
  PreprocessResult pre;
  pre.graph = g;
  pre.radius = all_radii(g, /*rho=*/16);
  pre.options.heuristic = ShortcutHeuristic::kNone;
  const SsspEngine engine(g, std::move(pre));

  // Hop-distance profile from one user: a full-distances request.
  QueryRequest profile;
  profile.source = 0;
  profile.want_full_distances = true;
  profile.engine = QueryEngine::kUnweighted;
  const QueryResponse full = engine.serve(profile);
  std::size_t reached3 = 0;
  for (Vertex v = 0; v < n; ++v) {
    if (full.dist[v] <= 3) ++reached3;
  }
  std::printf("  full profile: %zu steps to settle the graph "
              "(%.1f%% of users within 3 hops)\n",
              full.stats.steps, 100.0 * reached3 / n);

  // Targeted reachability checks: distance user 0 -> a few user ids, each
  // answered with early termination and an O(|targets|) response.
  QueryRequest reach;
  reach.source = 0;
  reach.targets = {n / 2, n - 1, 1};
  reach.want_paths = true;
  reach.engine = QueryEngine::kUnweighted;
  const QueryResponse resp = engine.serve(reach);
  std::printf("  targeted serve: %zu steps%s (vs %zu full)\n",
              resp.stats.steps, resp.stats.early_exit ? ", early exit" : "",
              full.stats.steps);
  for (const TargetResult& tr : resp.targets) {
    if (tr.dist != full.dist[tr.target]) {
      std::printf("MISMATCH on user %u\n", tr.target);
      return 1;
    }
    std::printf("    user %u: %llu hops (witness chain of %zu users)\n",
                tr.target, static_cast<unsigned long long>(tr.dist),
                tr.path.size());
  }

  // Shortcut economics: DP vs greedy at k = 3 (Figure 3(b) in miniature).
  for (const auto heuristic :
       {ShortcutHeuristic::kGreedy, ShortcutHeuristic::kDP}) {
    PreprocessOptions opts;
    opts.rho = 128;
    opts.k = 3;
    opts.heuristic = heuristic;
    // Unweighted hub graphs have huge distance-tie classes; use the
    // exactly-rho tie variant (paper footnote, §5.1) to keep this cheap.
    opts.settle_ties = false;
    const PreprocessResult shortcut_pre = preprocess(g, opts);
    std::printf("  shortcutting (rho=128, k=3, %s): +%.3fx edges\n",
                to_string(heuristic), shortcut_pre.added_factor);
  }
  return 0;
}
