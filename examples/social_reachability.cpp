// Scale-free network analysis (the paper's webgraph scenario): on graphs
// with hub vertices, Radius-Stepping needs very few steps and the DP
// heuristic adds almost no shortcut edges because the hubs already flatten
// the shortest-path trees (Section 5.2).
//
//   ./social_reachability [n=60000]
#include <cstdio>
#include <cstdlib>

#include "core/radii.hpp"
#include "core/rs_unweighted.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "shortcut/ball_search.hpp"
#include "shortcut/shortcut.hpp"

int main(int argc, char** argv) {
  using namespace rs;
  const Vertex n = argc > 1 ? static_cast<Vertex>(std::atoi(argv[1])) : 20000;

  const Graph g = gen::barabasi_albert(n, /*edges_per_vertex=*/7, /*seed=*/3);
  const DegreeStats deg = degree_stats(g);
  std::printf("scale-free network: %u vertices, %llu edges, "
              "max degree %llu (hub), avg %.2f\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_undirected_edges()),
              static_cast<unsigned long long>(deg.max), deg.mean);

  // Hop-distance profile from one user with plain BFS semantics (rho = 1)
  // vs radius-guided steps at increasing rho.
  for (const Vertex rho : {Vertex{1}, Vertex{16}, Vertex{128}}) {
    const std::vector<Dist> radius =
        rho == 1 ? dijkstra_radii(n) : all_radii(g, rho);
    RunStats stats;
    const std::vector<Dist> dist =
        radius_stepping_unweighted(g, /*source=*/0, radius, &stats);
    std::size_t reached3 = 0;
    for (Vertex v = 0; v < n; ++v) {
      if (dist[v] <= 3) ++reached3;
    }
    std::printf("  rho=%4u: %zu steps to settle the graph "
                "(%.1f%% of users within 3 hops)\n",
                rho, stats.steps, 100.0 * reached3 / n);
  }

  // Shortcut economics: DP vs greedy at k = 3 (Figure 3(b) in miniature).
  for (const auto heuristic :
       {ShortcutHeuristic::kGreedy, ShortcutHeuristic::kDP}) {
    PreprocessOptions opts;
    opts.rho = 128;
    opts.k = 3;
    opts.heuristic = heuristic;
    // Unweighted hub graphs have huge distance-tie classes; use the
    // exactly-rho tie variant (paper footnote, §5.1) to keep this cheap.
    opts.settle_ties = false;
    const PreprocessResult pre = preprocess(g, opts);
    std::printf("  shortcutting (rho=128, k=3, %s): +%.3fx edges\n",
                to_string(heuristic), pre.added_factor);
  }
  return 0;
}
