// sssp_serve — the serving daemon as a binary: wraps SsspServer
// (serve/server.hpp) around a preprocessed graph and answers targeted
// shortest-path requests over stdin or TCP until told to stop.
//
//   sssp_serve                                   # built-in demo (smoke)
//   sssp_serve g.gr g.pre                        # stdin line protocol
//   sssp_serve g.gr g.pre --port 7447            # TCP line protocol
//   sssp_serve g.gr --rho 64 --k 3               # preprocess in-process
//   sssp_serve g.gr --rho 64 --k 3 --dynamic 1   # + live weight updates
//
// Daemon flags: --port P (TCP listener; default stdin), --queue N
// (admission queue depth, default 1024), --max-batch N (micro-batch cap,
// default 64), --budget-us N (coalescing window, default 200),
// --batchers N (batcher threads, default 1), --engine flat|bst|bstflat,
// --cache 0|1 (hot-source result cache, default 0), --landmarks N (ALT
// oracle with N landmarks, default 0 = off), --dynamic 0|1 (live weight
// updates; requires in-process preprocessing, default 0),
// --trace-sample N (trace every Nth request, 0 = off; default from the
// RS_TRACE env var), --slow-query-us N (log traced spans of requests
// slower than N us to stderr, 0 = off), --flush-ms N / --flush-dirty F
// (with --dynamic 1: background flush every N ms / once staged updates
// would dirty fraction F of all balls).
//
// Line protocol v2 (one request per line, stdin and TCP alike) —
// verb-prefixed commands:
//
//   q <source> <t1>[,<t2>,...]     targeted distances, e.g. "q 0 143,77,5"
//   topk <source> <k>              the k nearest vertices, e.g. "topk 0 5"
//   stats                          one-line serving counters snapshot
//   metrics [json]                 full registry export — Prometheus text
//                                  exposition (MULTI-line answer), or
//                                  single-line JSON with the `json` arg
//   epoch                          the engine's current graph epoch
//
// and, with --dynamic 1, the live-update verbs:
//
//   update <u> <v> <w>[;<u> <v> <w>...]   apply + re-preprocess + swap
//   stage <u> <v> <w>[;<u> <v> <w>...]    buffer updates, no swap yet
//   flush                                 re-preprocess staged, swap epoch
//   qc <source> <t1>[,<t2>,...]           query corrected for staged edits
//
// plus the bare legacy form, still accepted verbatim:
//
//   <source> <t1>[,<t2>,...]       == "q <source> <t1>[,...]"
//
// `q`/`qc` lines are answered with the per-target distances in input
// order, space-separated, `inf` for unreachable. `topk` lines are
// answered with k space-separated `vertex:dist` pairs, nearest first.
// `update`/`flush` answer "ok epoch=E updated=A dirty=D/T ms=X"; `stage`
// answers "staged epoch=E updated=A pending=N". Any malformed or
// rejected line gets `error: <reason>` (bad ids and out-of-range vertices
// are rejected by admission control without touching the engine). EOF (or
// SIGINT/SIGTERM for TCP) drains in-flight requests and prints the
// serving stats before exiting.
//
// With no arguments, runs a self-contained demo: preprocesses a small
// road network, fires concurrent clients through the daemon, verifies
// every answer against direct engine.serve() calls, then churns weights
// through the dynamic service verifying against Dijkstra, and exits
// non-zero on any mismatch — which is exactly what the CTest smoke run
// executes.
#include <arpa/inet.h>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <limits>
#include <map>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "baseline/dijkstra.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/update.hpp"
#include "graph/weights.hpp"
#include "obs/trace.hpp"
#include "serve/dynamic.hpp"
#include "serve/server.hpp"
#include "shortcut/serialize.hpp"

namespace {

using namespace rs;
using namespace rs::serve;

/// Minimal --flag value parser (same contract as sssp_cli's).
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string a = argv[i];
      const bool is_flag =
          a.size() >= 2 && a[0] == '-' &&
          !std::isdigit(static_cast<unsigned char>(a[1]));
      if (is_flag && i + 1 < argc) {
        kv_[a] = argv[++i];
      } else {
        positional_.push_back(a);
      }
    }
  }
  std::string get(const std::string& key, const std::string& dflt) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? dflt : it->second;
  }
  long get_int(const std::string& key, long dflt) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? dflt : std::stol(it->second);
  }
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

/// Strict vertex-id parse: digits only, fits a Vertex. Negative numbers,
/// garbage, and overflow all throw — admission must never mangle an id.
Vertex parse_vertex(const std::string& item) {
  if (item.empty() || item[0] == '-') {
    throw std::invalid_argument("bad vertex id: '" + item + "'");
  }
  std::size_t used = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(item, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad vertex id: '" + item + "'");
  }
  if (used != item.size() || v > std::numeric_limits<Vertex>::max()) {
    throw std::invalid_argument("bad vertex id: '" + item + "'");
  }
  return static_cast<Vertex>(v);
}

/// "<source> <t1>[,<t2>,...]" -> request. Throws on any malformed piece.
QueryRequest parse_line(const std::string& line, QueryEngine engine) {
  const std::size_t space = line.find(' ');
  if (space == std::string::npos) {
    throw std::invalid_argument("expected '<source> <t1>[,<t2>,...]'");
  }
  QueryRequest req;
  req.source = parse_vertex(line.substr(0, space));
  req.engine = engine;
  std::size_t pos = space + 1;
  while (pos <= line.size()) {
    std::size_t comma = line.find(',', pos);
    if (comma == std::string::npos) comma = line.size();
    const std::string item = line.substr(pos, comma - pos);
    if (!item.empty()) req.targets.push_back(parse_vertex(item));
    pos = comma + 1;
  }
  if (req.targets.empty()) {
    throw std::invalid_argument("at least one target required");
  }
  return req;
}

/// "<source> <k>" -> kTopK request. Throws on any malformed piece.
QueryRequest parse_topk(const std::string& rest, QueryEngine engine) {
  const std::size_t space = rest.find(' ');
  if (space == std::string::npos) {
    throw std::invalid_argument("expected 'topk <source> <k>'");
  }
  QueryRequest req;
  req.kind = RequestKind::kTopK;
  req.source = parse_vertex(rest.substr(0, space));
  // parse_vertex's strict digits-and-range contract fits k as well.
  req.k = parse_vertex(rest.substr(space + 1));
  req.engine = engine;
  return req;
}

/// "<u> <v> <w>[;<u> <v> <w>...]" -> weight updates. Throws on any
/// malformed piece; weights share parse_vertex's strict digits contract.
std::vector<WeightUpdate> parse_updates(const std::string& rest) {
  std::vector<WeightUpdate> updates;
  std::size_t pos = 0;
  while (pos <= rest.size()) {
    std::size_t semi = rest.find(';', pos);
    if (semi == std::string::npos) semi = rest.size();
    const std::string item = rest.substr(pos, semi - pos);
    pos = semi + 1;
    if (item.empty()) continue;
    const std::size_t s1 = item.find(' ');
    const std::size_t s2 =
        s1 == std::string::npos ? std::string::npos : item.find(' ', s1 + 1);
    if (s2 == std::string::npos) {
      throw std::invalid_argument("expected '<u> <v> <w>[;...]'");
    }
    WeightUpdate up;
    up.u = parse_vertex(item.substr(0, s1));
    up.v = parse_vertex(item.substr(s1 + 1, s2 - s1 - 1));
    up.w = static_cast<Weight>(parse_vertex(item.substr(s2 + 1)));
    updates.push_back(up);
  }
  if (updates.empty()) {
    throw std::invalid_argument("expected '<u> <v> <w>[;...]'");
  }
  return updates;
}

std::string format_update_report(const rs::serve::UpdateReport& r) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "ok epoch=%llu updated=%llu dirty=%llu/%llu ms=%.2f",
                static_cast<unsigned long long>(r.epoch),
                static_cast<unsigned long long>(r.updated_arcs),
                static_cast<unsigned long long>(r.dirty_balls),
                static_cast<unsigned long long>(r.total_balls),
                r.incremental_ms);
  return buf;
}

std::string format_targets(const QueryResponse& resp, bool topk) {
  std::string out;
  for (const TargetResult& tr : resp.targets) {
    if (!out.empty()) out += ' ';
    if (topk) {
      out += std::to_string(tr.target);
      out += ':';
    }
    out += tr.dist == kInfDist ? "inf" : std::to_string(tr.dist);
  }
  if (out.empty()) out = topk ? "none" : "";
  return out;
}

/// Serves one protocol line; always returns exactly one response line.
/// Recognizes the v2 verbs (q / topk / stats / epoch, plus the dynamic
/// update / stage / flush / qc when `dyn` is non-null) and falls back to
/// the bare legacy "<source> <targets>" form for anything else.
std::string answer_line(SsspServer& server, rs::serve::DynamicSsspService* dyn,
                        const std::string& line, QueryEngine qe) {
  const std::size_t sp = line.find(' ');
  const std::string verb = line.substr(0, sp);
  const std::string rest = sp == std::string::npos ? "" : line.substr(sp + 1);

  if (verb == "stats") return format_stats_line(server);
  if (verb == "metrics") {
    std::string out = server.export_metrics(rest == "json"
                                                ? MetricsFormat::kJson
                                                : MetricsFormat::kPrometheus);
    // The front-ends append the terminating newline themselves.
    while (!out.empty() && out.back() == '\n') out.pop_back();
    return out;
  }
  if (verb == "epoch") {
    return std::to_string(server.engine_snapshot()->graph_epoch());
  }
  if (verb == "update" || verb == "stage" || verb == "flush" ||
      verb == "qc") {
    if (dyn == nullptr) {
      return "error: dynamic verbs need --dynamic 1 (in-process "
             "preprocessing)";
    }
    try {
      if (verb == "update") {
        return format_update_report(dyn->apply_updates(parse_updates(rest)));
      }
      if (verb == "stage") {
        const rs::serve::UpdateReport r = dyn->stage(parse_updates(rest));
        char buf[128];
        std::snprintf(buf, sizeof(buf),
                      "staged epoch=%llu updated=%llu pending=%llu",
                      static_cast<unsigned long long>(r.epoch),
                      static_cast<unsigned long long>(r.updated_arcs),
                      static_cast<unsigned long long>(r.staged));
        return buf;
      }
      if (verb == "flush") return format_update_report(dyn->flush());
      return format_targets(dyn->serve_corrected(parse_line(rest, qe)),
                            /*topk=*/false);
    } catch (const std::exception& e) {
      return std::string("error: ") + e.what();
    }
  }

  QueryRequest req;
  try {
    if (verb == "q") {
      req = parse_line(rest, qe);
    } else if (verb == "topk") {
      req = parse_topk(rest, qe);
    } else {
      req = parse_line(line, qe);  // legacy bare form
    }
  } catch (const std::exception& e) {
    return std::string("error: ") + e.what();
  }
  const bool topk = req.kind == RequestKind::kTopK;
  std::future<QueryResponse> fut;
  const SubmitStatus status = server.submit(std::move(req), fut);
  if (status != SubmitStatus::kAccepted) {
    return std::string("error: ") + to_string(status);
  }
  return format_targets(fut.get(), topk);
}

/// Shutdown print: the SAME registry-backed line the `stats` verb answers
/// with, so the two can never drift apart.
void print_stats(const SsspServer& server) {
  std::fprintf(stderr, "sssp_serve: %s\n",
               format_stats_line(server).c_str());
}

volatile std::sig_atomic_t g_stop = 0;
int g_listen_fd = -1;

void on_signal(int) {
  g_stop = 1;
  // Closing the listener unblocks accept() so the main loop can drain.
  if (g_listen_fd >= 0) ::close(g_listen_fd);
}

/// Blocking TCP front-end: line protocol, one thread per connection. All
/// connections feed the same server, so requests from different clients
/// coalesce into shared micro-batches.
int tcp_serve(SsspServer& server, rs::serve::DynamicSsspService* dyn,
              QueryEngine engine, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("sssp_serve: socket");
    return 1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    std::perror("sssp_serve: bind/listen");
    ::close(fd);
    return 1;
  }
  g_listen_fd = fd;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::fprintf(stderr, "sssp_serve: listening on port %d\n", port);

  std::vector<std::thread> conns;
  while (g_stop == 0) {
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) break;  // listener closed by the signal handler
    conns.emplace_back([client, &server, dyn, engine] {
      std::string buf;
      char chunk[4096];
      ssize_t got;
      while ((got = ::read(client, chunk, sizeof(chunk))) > 0) {
        buf.append(chunk, static_cast<std::size_t>(got));
        std::size_t nl;
        while ((nl = buf.find('\n')) != std::string::npos) {
          std::string line = buf.substr(0, nl);
          if (!line.empty() && line.back() == '\r') line.pop_back();
          buf.erase(0, nl + 1);
          if (line.empty()) continue;
          const std::string reply =
              answer_line(server, dyn, line, engine) + "\n";
          if (::write(client, reply.data(), reply.size()) < 0) break;
        }
      }
      ::close(client);
    });
  }
  for (std::thread& t : conns) t.join();
  if (g_stop == 0) ::close(fd);
  return 0;
}

/// Stdin front-end: one request line in, one response line out.
int stdio_serve(SsspServer& server, rs::serve::DynamicSsspService* dyn,
                QueryEngine engine) {
  std::string line;
  char chunk[4096];
  while (std::fgets(chunk, sizeof(chunk), stdin) != nullptr) {
    line = chunk;
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    std::printf("%s\n", answer_line(server, dyn, line, engine).c_str());
    std::fflush(stdout);
  }
  return 0;
}

/// No-argument mode: a self-verifying concurrent demo of the daemon.
int demo() {
  Graph g = gen::road_network(24, 24, /*seed=*/3);
  g = assign_uniform_weights(g, /*seed=*/10, 1, 1000);
  PreprocessOptions popts;
  popts.rho = 16;
  popts.k = 2;
  const SsspEngine engine(g, popts);

  ServerOptions opts;
  opts.queue_capacity = 256;
  opts.max_batch = 16;
  opts.batch_budget = std::chrono::microseconds(500);
  opts.batchers = 2;
  opts.enable_cache = true;  // demo doubles as a cache-coherence smoke
  SsspServer server(engine, opts);

  constexpr int kClients = 4;
  constexpr int kPerClient = 16;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        // Sources cycle through a pool of 8, so the cache both misses
        // (first touch) and hits (revisits) under concurrency; cached
        // answers must still match direct engine serves bit for bit.
        QueryRequest req;
        req.source = static_cast<Vertex>((c * 131 + i * 17) % 8);
        req.targets = {static_cast<Vertex>((c * 7 + i * 53) %
                                           engine.original_graph()
                                               .num_vertices())};
        const QueryResponse got = server.serve_sync(req);
        const QueryResponse want = engine.serve(req);
        if (got.targets[0].dist != want.targets[0].dist) {
          mismatches.fetch_add(1);
        }
        // Every 8th request doubles as a top-k probe.
        if (i % 8 == 0) {
          QueryRequest tk;
          tk.kind = RequestKind::kTopK;
          tk.source = req.source;
          tk.k = 5;
          const QueryResponse got_k = server.serve_sync(tk);
          const QueryResponse want_k = engine.serve(tk);
          if (got_k.targets.size() != want_k.targets.size()) {
            mismatches.fetch_add(1);
          } else {
            for (std::size_t j = 0; j < got_k.targets.size(); ++j) {
              if (got_k.targets[j].target != want_k.targets[j].target ||
                  got_k.targets[j].dist != want_k.targets[j].dist) {
                mismatches.fetch_add(1);
              }
            }
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.drain();
  print_stats(server);
  server.shutdown();

  const ServerStats s = server.stats();
  constexpr int kTotal =
      kClients * kPerClient + kClients * (kPerClient / 8);  // + topk probes
  const bool counters_ok = s.accepted == kTotal && s.in_flight() == 0;
  // 8 hot sources under 72 eligible-or-probe requests: the cache must
  // have produced hits (misses alone would mean the keying is broken).
  const bool cache_ok = s.cache_hits > 0;
  if (mismatches.load() != 0 || !counters_ok || !cache_ok) {
    std::fprintf(stderr,
                 "sssp_serve demo: FAILED (%d mismatches, hits=%llu)\n",
                 mismatches.load(),
                 static_cast<unsigned long long>(s.cache_hits));
    return 1;
  }
  std::printf("sssp_serve demo: %d requests across %d clients, all "
              "verified (%llu cache hits)\n",
              kTotal, kClients,
              static_cast<unsigned long long>(s.cache_hits));

  // Dynamic segment: churn weights through the live-update service. Each
  // round stages a batch (answers corrected against the published epoch
  // must match Dijkstra on the mutated graph), then flushes (the swapped
  // epoch must serve the same row natively).
  rs::serve::DynamicSsspService::Options dopts;
  dopts.preprocess = popts;
  dopts.server = opts;
  rs::serve::DynamicSsspService dyn(g, dopts);
  Graph shadow = g;
  std::mt19937 rng(77);
  std::uniform_int_distribution<Weight> wdist(1, 1000);
  int dyn_mismatches = 0;
  for (int round = 0; round < 3; ++round) {
    std::uniform_int_distribution<EdgeId> adist(0, shadow.num_edges() - 1);
    std::vector<WeightUpdate> batch;
    for (int i = 0; i < 4; ++i) {
      const EdgeId e = adist(rng);
      Vertex u = 0;
      while (shadow.last_arc(u) <= e) ++u;
      batch.push_back(WeightUpdate{u, shadow.arc_target(e), wdist(rng)});
    }
    shadow = apply_weight_updates(shadow, batch).graph;
    dyn.stage(batch);
    const std::vector<Vertex> sources = {0, 99};
    std::vector<QueryRequest> reqs;
    for (const Vertex source : sources) {
      QueryRequest req;
      req.source = source;
      req.targets.push_back(static_cast<Vertex>(round * 37 + 11));
      req.targets.push_back(static_cast<Vertex>(shadow.num_vertices() - 1));
      reqs.push_back(std::move(req));
    }
    // Staged but not flushed: the corrected path must already be exact.
    for (const QueryRequest& req : reqs) {
      const std::vector<Dist> want = dijkstra(shadow, req.source);
      const QueryResponse corrected = dyn.serve_corrected(req);
      for (std::size_t j = 0; j < req.targets.size(); ++j) {
        if (corrected.targets[j].dist != want[req.targets[j]]) {
          ++dyn_mismatches;
        }
      }
    }
    dyn.flush();
    // Swapped epoch: the daemon serves the new weights natively.
    for (const QueryRequest& req : reqs) {
      const std::vector<Dist> want = dijkstra(shadow, req.source);
      const QueryResponse swapped = dyn.server().serve_sync(req);
      for (std::size_t j = 0; j < req.targets.size(); ++j) {
        if (swapped.targets[j].dist != want[req.targets[j]]) {
          ++dyn_mismatches;
        }
      }
    }
  }
  const std::uint64_t final_epoch = dyn.server().stats().epoch;
  if (dyn_mismatches != 0 || final_epoch < 2) {
    std::fprintf(stderr,
                 "sssp_serve demo: dynamic FAILED (%d mismatches, "
                 "epoch=%llu)\n",
                 dyn_mismatches,
                 static_cast<unsigned long long>(final_epoch));
    return 1;
  }
  std::printf("sssp_serve demo: dynamic churn verified across %llu "
              "epoch swaps\n",
              static_cast<unsigned long long>(final_epoch - 1));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv, 1);
  if (args.positional().empty()) return demo();

  try {
    const std::string graph_path = args.positional()[0];
    Graph g = graph_path.size() > 3 &&
                      graph_path.substr(graph_path.size() - 3) == ".gr"
                  ? io::read_dimacs_file(graph_path)
                  : io::read_edge_list_file(graph_path);

    ServerOptions opts;
    opts.queue_capacity =
        static_cast<std::size_t>(args.get_int("--queue", 1024));
    opts.max_batch =
        static_cast<std::size_t>(args.get_int("--max-batch", 64));
    opts.batch_budget =
        std::chrono::microseconds(args.get_int("--budget-us", 200));
    opts.batchers = static_cast<int>(args.get_int("--batchers", 1));
    opts.enable_cache = args.get_int("--cache", 0) != 0;
    opts.trace_sample = static_cast<std::uint32_t>(args.get_int(
        "--trace-sample",
        static_cast<long>(rs::obs::trace_sample_from_env())));
    opts.slow_query_us =
        static_cast<std::uint64_t>(args.get_int("--slow-query-us", 0));
    const long landmarks = args.get_int("--landmarks", 0);
    if (landmarks > 0) {
      opts.enable_landmarks = true;
      opts.landmarks.count = static_cast<std::size_t>(landmarks);
    }

    const std::string which = args.get("--engine", "flat");
    const QueryEngine qe = which == "bst"       ? QueryEngine::kBst
                           : which == "bstflat" ? QueryEngine::kBstFlat
                                                : QueryEngine::kFlat;

    PreprocessOptions popts;
    popts.rho = static_cast<Vertex>(args.get_int("--rho", 64));
    popts.k = static_cast<Vertex>(args.get_int("--k", 3));

    // --dynamic needs the preprocessor's warm state, so it is only
    // available on the in-process preprocessing path; a loaded .pre file
    // serves the static flow unchanged.
    std::unique_ptr<rs::serve::DynamicSsspService> dyn;
    std::unique_ptr<SsspServer> static_server;
    if (args.get_int("--dynamic", 0) != 0) {
      if (args.positional().size() >= 2) {
        throw std::invalid_argument(
            "--dynamic 1 requires in-process preprocessing (omit the "
            ".pre file)");
      }
      rs::serve::DynamicSsspService::Options dopts;
      dopts.preprocess = popts;
      dopts.server = opts;
      dopts.flush_interval_ms =
          static_cast<std::uint32_t>(args.get_int("--flush-ms", 0));
      dopts.flush_dirty_fraction = std::stod(args.get("--flush-dirty", "0"));
      dyn = std::make_unique<rs::serve::DynamicSsspService>(std::move(g),
                                                            dopts);
    } else {
      auto engine = args.positional().size() >= 2
                        ? std::make_shared<const SsspEngine>(
                              std::move(g),
                              load_preprocessing_file(args.positional()[1]))
                        : std::make_shared<const SsspEngine>(std::move(g),
                                                             popts);
      static_server =
          std::make_unique<SsspServer>(std::move(engine), opts);
    }
    SsspServer& server = dyn != nullptr ? dyn->server() : *static_server;

    const int port = static_cast<int>(args.get_int("--port", 0));
    const int rc = port > 0 ? tcp_serve(server, dyn.get(), qe, port)
                            : stdio_serve(server, dyn.get(), qe);
    server.drain();
    print_stats(server);
    server.shutdown();
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
