// sssp_serve — the serving daemon as a binary: wraps SsspServer
// (serve/server.hpp) around a preprocessed graph and answers targeted
// shortest-path requests over stdin or TCP until told to stop.
//
//   sssp_serve                                   # built-in demo (smoke)
//   sssp_serve g.gr g.pre                        # stdin line protocol
//   sssp_serve g.gr g.pre --port 7447            # TCP line protocol
//   sssp_serve g.gr --rho 64 --k 3               # preprocess in-process
//
// Daemon flags: --port P (TCP listener; default stdin), --queue N
// (admission queue depth, default 1024), --max-batch N (micro-batch cap,
// default 64), --budget-us N (coalescing window, default 200),
// --batchers N (batcher threads, default 1), --engine flat|bst|bstflat,
// --cache 0|1 (hot-source result cache, default 0), --landmarks N (ALT
// oracle with N landmarks, default 0 = off).
//
// Line protocol v2 (one request per line, stdin and TCP alike) —
// verb-prefixed commands:
//
//   q <source> <t1>[,<t2>,...]     targeted distances, e.g. "q 0 143,77,5"
//   topk <source> <k>              the k nearest vertices, e.g. "topk 0 5"
//   stats                          one-line serving counters snapshot
//   epoch                          the engine's current graph epoch
//
// plus the bare legacy form, still accepted verbatim:
//
//   <source> <t1>[,<t2>,...]       == "q <source> <t1>[,...]"
//
// `q` lines are answered with the per-target distances in input order,
// space-separated, `inf` for unreachable. `topk` lines are answered with
// k space-separated `vertex:dist` pairs, nearest first. Any malformed or
// rejected line gets `error: <reason>` (bad ids and out-of-range vertices
// are rejected by admission control without touching the engine). EOF (or
// SIGINT/SIGTERM for TCP) drains in-flight requests and prints the
// serving stats before exiting.
//
// With no arguments, runs a self-contained demo: preprocesses a small
// road network, fires concurrent clients through the daemon, verifies
// every answer against direct engine.serve() calls, and exits non-zero
// on any mismatch — which is exactly what the CTest smoke run executes.
#include <arpa/inet.h>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/weights.hpp"
#include "serve/server.hpp"
#include "shortcut/serialize.hpp"

namespace {

using namespace rs;
using namespace rs::serve;

/// Minimal --flag value parser (same contract as sssp_cli's).
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string a = argv[i];
      const bool is_flag =
          a.size() >= 2 && a[0] == '-' &&
          !std::isdigit(static_cast<unsigned char>(a[1]));
      if (is_flag && i + 1 < argc) {
        kv_[a] = argv[++i];
      } else {
        positional_.push_back(a);
      }
    }
  }
  std::string get(const std::string& key, const std::string& dflt) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? dflt : it->second;
  }
  long get_int(const std::string& key, long dflt) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? dflt : std::stol(it->second);
  }
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

/// Strict vertex-id parse: digits only, fits a Vertex. Negative numbers,
/// garbage, and overflow all throw — admission must never mangle an id.
Vertex parse_vertex(const std::string& item) {
  if (item.empty() || item[0] == '-') {
    throw std::invalid_argument("bad vertex id: '" + item + "'");
  }
  std::size_t used = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(item, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("bad vertex id: '" + item + "'");
  }
  if (used != item.size() || v > std::numeric_limits<Vertex>::max()) {
    throw std::invalid_argument("bad vertex id: '" + item + "'");
  }
  return static_cast<Vertex>(v);
}

/// "<source> <t1>[,<t2>,...]" -> request. Throws on any malformed piece.
QueryRequest parse_line(const std::string& line, QueryEngine engine) {
  const std::size_t space = line.find(' ');
  if (space == std::string::npos) {
    throw std::invalid_argument("expected '<source> <t1>[,<t2>,...]'");
  }
  QueryRequest req;
  req.source = parse_vertex(line.substr(0, space));
  req.engine = engine;
  std::size_t pos = space + 1;
  while (pos <= line.size()) {
    std::size_t comma = line.find(',', pos);
    if (comma == std::string::npos) comma = line.size();
    const std::string item = line.substr(pos, comma - pos);
    if (!item.empty()) req.targets.push_back(parse_vertex(item));
    pos = comma + 1;
  }
  if (req.targets.empty()) {
    throw std::invalid_argument("at least one target required");
  }
  return req;
}

/// "<source> <k>" -> kTopK request. Throws on any malformed piece.
QueryRequest parse_topk(const std::string& rest, QueryEngine engine) {
  const std::size_t space = rest.find(' ');
  if (space == std::string::npos) {
    throw std::invalid_argument("expected 'topk <source> <k>'");
  }
  QueryRequest req;
  req.kind = RequestKind::kTopK;
  req.source = parse_vertex(rest.substr(0, space));
  // parse_vertex's strict digits-and-range contract fits k as well.
  req.k = parse_vertex(rest.substr(space + 1));
  req.engine = engine;
  return req;
}

std::string stats_line(const SsspServer& server) {
  const ServerStats s = server.stats();
  const auto& lat = server.latency();
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "accepted=%llu completed=%llu cache_hits=%llu "
                "cache_misses=%llu batches=%llu mean_batch=%.2f "
                "p50_us=%llu p99_us=%llu",
                static_cast<unsigned long long>(s.accepted),
                static_cast<unsigned long long>(s.completed),
                static_cast<unsigned long long>(s.cache_hits),
                static_cast<unsigned long long>(s.cache_misses),
                static_cast<unsigned long long>(s.batches), s.mean_batch(),
                static_cast<unsigned long long>(lat.value_at_quantile(0.50)),
                static_cast<unsigned long long>(lat.value_at_quantile(0.99)));
  return buf;
}

/// Serves one protocol line; always returns exactly one response line.
/// Recognizes the v2 verbs (q / topk / stats / epoch) and falls back to
/// the bare legacy "<source> <targets>" form for anything else.
std::string answer_line(SsspServer& server, const SsspEngine& engine,
                        const std::string& line, QueryEngine qe) {
  const std::size_t sp = line.find(' ');
  const std::string verb = line.substr(0, sp);
  const std::string rest = sp == std::string::npos ? "" : line.substr(sp + 1);

  if (verb == "stats") return stats_line(server);
  if (verb == "epoch") return std::to_string(engine.graph_epoch());

  QueryRequest req;
  try {
    if (verb == "q") {
      req = parse_line(rest, qe);
    } else if (verb == "topk") {
      req = parse_topk(rest, qe);
    } else {
      req = parse_line(line, qe);  // legacy bare form
    }
  } catch (const std::exception& e) {
    return std::string("error: ") + e.what();
  }
  const bool topk = req.kind == RequestKind::kTopK;
  std::future<QueryResponse> fut;
  const SubmitStatus status = server.submit(std::move(req), fut);
  if (status != SubmitStatus::kAccepted) {
    return std::string("error: ") + to_string(status);
  }
  const QueryResponse resp = fut.get();
  std::string out;
  for (const TargetResult& tr : resp.targets) {
    if (!out.empty()) out += ' ';
    if (topk) {
      out += std::to_string(tr.target);
      out += ':';
    }
    out += tr.dist == kInfDist ? "inf" : std::to_string(tr.dist);
  }
  if (out.empty()) out = topk ? "none" : "";
  return out;
}

void print_stats(const SsspServer& server) {
  const ServerStats s = server.stats();
  const auto& lat = server.latency();
  std::fprintf(stderr,
               "sssp_serve: accepted=%llu completed=%llu in_flight=%llu "
               "rejected(full=%llu invalid=%llu shutdown=%llu)\n",
               static_cast<unsigned long long>(s.accepted),
               static_cast<unsigned long long>(s.completed),
               static_cast<unsigned long long>(s.in_flight()),
               static_cast<unsigned long long>(s.rejected_full),
               static_cast<unsigned long long>(s.rejected_invalid),
               static_cast<unsigned long long>(s.rejected_shutdown));
  std::fprintf(stderr,
               "sssp_serve: batches=%llu mean_batch=%.2f max_batch=%llu  "
               "latency p50=%llu us p99=%llu us p999=%llu us\n",
               static_cast<unsigned long long>(s.batches), s.mean_batch(),
               static_cast<unsigned long long>(s.max_batch),
               static_cast<unsigned long long>(lat.value_at_quantile(0.50)),
               static_cast<unsigned long long>(lat.value_at_quantile(0.99)),
               static_cast<unsigned long long>(lat.value_at_quantile(0.999)));
}

volatile std::sig_atomic_t g_stop = 0;
int g_listen_fd = -1;

void on_signal(int) {
  g_stop = 1;
  // Closing the listener unblocks accept() so the main loop can drain.
  if (g_listen_fd >= 0) ::close(g_listen_fd);
}

/// Blocking TCP front-end: line protocol, one thread per connection. All
/// connections feed the same server, so requests from different clients
/// coalesce into shared micro-batches.
int tcp_serve(SsspServer& server, const SsspEngine& eng, QueryEngine engine,
              int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("sssp_serve: socket");
    return 1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    std::perror("sssp_serve: bind/listen");
    ::close(fd);
    return 1;
  }
  g_listen_fd = fd;
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  std::fprintf(stderr, "sssp_serve: listening on port %d\n", port);

  std::vector<std::thread> conns;
  while (g_stop == 0) {
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) break;  // listener closed by the signal handler
    conns.emplace_back([client, &server, &eng, engine] {
      std::string buf;
      char chunk[4096];
      ssize_t got;
      while ((got = ::read(client, chunk, sizeof(chunk))) > 0) {
        buf.append(chunk, static_cast<std::size_t>(got));
        std::size_t nl;
        while ((nl = buf.find('\n')) != std::string::npos) {
          std::string line = buf.substr(0, nl);
          if (!line.empty() && line.back() == '\r') line.pop_back();
          buf.erase(0, nl + 1);
          if (line.empty()) continue;
          const std::string reply =
              answer_line(server, eng, line, engine) + "\n";
          if (::write(client, reply.data(), reply.size()) < 0) break;
        }
      }
      ::close(client);
    });
  }
  for (std::thread& t : conns) t.join();
  if (g_stop == 0) ::close(fd);
  return 0;
}

/// Stdin front-end: one request line in, one response line out.
int stdio_serve(SsspServer& server, const SsspEngine& eng,
                QueryEngine engine) {
  std::string line;
  char chunk[4096];
  while (std::fgets(chunk, sizeof(chunk), stdin) != nullptr) {
    line = chunk;
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    std::printf("%s\n", answer_line(server, eng, line, engine).c_str());
    std::fflush(stdout);
  }
  return 0;
}

/// No-argument mode: a self-verifying concurrent demo of the daemon.
int demo() {
  Graph g = gen::road_network(24, 24, /*seed=*/3);
  g = assign_uniform_weights(g, /*seed=*/10, 1, 1000);
  PreprocessOptions popts;
  popts.rho = 16;
  popts.k = 2;
  const SsspEngine engine(g, popts);

  ServerOptions opts;
  opts.queue_capacity = 256;
  opts.max_batch = 16;
  opts.batch_budget = std::chrono::microseconds(500);
  opts.batchers = 2;
  opts.enable_cache = true;  // demo doubles as a cache-coherence smoke
  SsspServer server(engine, opts);

  constexpr int kClients = 4;
  constexpr int kPerClient = 16;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        // Sources cycle through a pool of 8, so the cache both misses
        // (first touch) and hits (revisits) under concurrency; cached
        // answers must still match direct engine serves bit for bit.
        QueryRequest req;
        req.source = static_cast<Vertex>((c * 131 + i * 17) % 8);
        req.targets = {static_cast<Vertex>((c * 7 + i * 53) %
                                           engine.original_graph()
                                               .num_vertices())};
        const QueryResponse got = server.serve_sync(req);
        const QueryResponse want = engine.serve(req);
        if (got.targets[0].dist != want.targets[0].dist) {
          mismatches.fetch_add(1);
        }
        // Every 8th request doubles as a top-k probe.
        if (i % 8 == 0) {
          QueryRequest tk;
          tk.kind = RequestKind::kTopK;
          tk.source = req.source;
          tk.k = 5;
          const QueryResponse got_k = server.serve_sync(tk);
          const QueryResponse want_k = engine.serve(tk);
          if (got_k.targets.size() != want_k.targets.size()) {
            mismatches.fetch_add(1);
          } else {
            for (std::size_t j = 0; j < got_k.targets.size(); ++j) {
              if (got_k.targets[j].target != want_k.targets[j].target ||
                  got_k.targets[j].dist != want_k.targets[j].dist) {
                mismatches.fetch_add(1);
              }
            }
          }
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.drain();
  print_stats(server);
  server.shutdown();

  const ServerStats s = server.stats();
  constexpr int kTotal =
      kClients * kPerClient + kClients * (kPerClient / 8);  // + topk probes
  const bool counters_ok = s.accepted == kTotal && s.in_flight() == 0;
  // 8 hot sources under 72 eligible-or-probe requests: the cache must
  // have produced hits (misses alone would mean the keying is broken).
  const bool cache_ok = s.cache_hits > 0;
  if (mismatches.load() != 0 || !counters_ok || !cache_ok) {
    std::fprintf(stderr,
                 "sssp_serve demo: FAILED (%d mismatches, hits=%llu)\n",
                 mismatches.load(),
                 static_cast<unsigned long long>(s.cache_hits));
    return 1;
  }
  std::printf("sssp_serve demo: %d requests across %d clients, all "
              "verified (%llu cache hits)\n",
              kTotal, kClients,
              static_cast<unsigned long long>(s.cache_hits));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args(argc, argv, 1);
  if (args.positional().empty()) return demo();

  try {
    const std::string graph_path = args.positional()[0];
    Graph g = graph_path.size() > 3 &&
                      graph_path.substr(graph_path.size() - 3) == ".gr"
                  ? io::read_dimacs_file(graph_path)
                  : io::read_edge_list_file(graph_path);

    SsspEngine engine = [&] {
      if (args.positional().size() >= 2) {
        return SsspEngine(std::move(g),
                          load_preprocessing_file(args.positional()[1]));
      }
      PreprocessOptions popts;
      popts.rho = static_cast<Vertex>(args.get_int("--rho", 64));
      popts.k = static_cast<Vertex>(args.get_int("--k", 3));
      return SsspEngine(std::move(g), popts);
    }();

    ServerOptions opts;
    opts.queue_capacity =
        static_cast<std::size_t>(args.get_int("--queue", 1024));
    opts.max_batch =
        static_cast<std::size_t>(args.get_int("--max-batch", 64));
    opts.batch_budget =
        std::chrono::microseconds(args.get_int("--budget-us", 200));
    opts.batchers = static_cast<int>(args.get_int("--batchers", 1));
    opts.enable_cache = args.get_int("--cache", 0) != 0;
    const long landmarks = args.get_int("--landmarks", 0);
    if (landmarks > 0) {
      opts.enable_landmarks = true;
      opts.landmarks.count = static_cast<std::size_t>(landmarks);
    }

    const std::string which = args.get("--engine", "flat");
    const QueryEngine qe = which == "bst"       ? QueryEngine::kBst
                           : which == "bstflat" ? QueryEngine::kBstFlat
                                                : QueryEngine::kFlat;

    SsspServer server(engine, opts);
    const int port = static_cast<int>(args.get_int("--port", 0));
    const int rc = port > 0 ? tcp_serve(server, engine, qe, port)
                            : stdio_serve(server, engine, qe);
    server.drain();
    print_stats(server);
    server.shutdown();
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
