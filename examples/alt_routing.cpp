// ALT point-to-point routing (A* + Landmarks + Triangle inequality,
// Goldberg & Harrelson): the classic downstream consumer of fast
// multi-source SSSP, now built on the library's own LandmarkOracle
// (serve/landmark_oracle.hpp). The oracle computes its landmark rows
// through the serving API — one full-distances run per landmark,
// amortizing one preprocessing pass, exactly the paper's §5.4
// multi-source regime — and this example consumes the same rows two ways:
//
//  1. as the A* potential pi(v) = lower_bound(v, t), expanding a fraction
//     of what plain Dijkstra scans;
//  2. as per-target lower bounds threaded into the engine's targeted
//     serve (QueryRequest::target_lower_bounds via annotate()), where a
//     target whose tentative distance reaches its bound is proven final
//     before the plain step-boundary exit would fire — same distances,
//     at most the same number of steps.
//
// The engine's plain targeted serve() is the exact oracle for each query.
//
//   ./alt_routing [side=160] [landmarks=8] [queries=10]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "parallel/rng.hpp"
#include "parallel/timer.hpp"
#include "pq/binary_heap.hpp"
#include "serve/landmark_oracle.hpp"

namespace {

using namespace rs;
using rs::serve::LandmarkOptions;
using rs::serve::LandmarkOracle;

/// Vertices popped by a plain Dijkstra run that stops at `target`.
std::size_t dijkstra_to_target(const Graph& g, Vertex s, Vertex t,
                               Dist* dist_out) {
  std::vector<Dist> dist(g.num_vertices(), kInfDist);
  IndexedHeap<Dist> heap(g.num_vertices());
  dist[s] = 0;
  heap.insert_or_decrease(s, 0);
  std::size_t popped = 0;
  while (!heap.empty()) {
    const auto [d, u] = heap.extract_min();
    ++popped;
    if (u == t) {
      *dist_out = d;
      return popped;
    }
    for (EdgeId e = g.first_arc(u); e < g.last_arc(u); ++e) {
      const Vertex v = g.arc_target(e);
      const Dist nd = d + g.arc_weight(e);
      if (nd < dist[v]) {
        dist[v] = nd;
        heap.insert_or_decrease(v, nd);
      }
    }
  }
  *dist_out = kInfDist;
  return popped;
}

/// A* with the oracle's bound as the potential: pi(v) = lower_bound(v, t)
/// (admissible and consistent with assume_symmetric on this undirected
/// road network).
std::size_t alt_to_target(const Graph& g, const LandmarkOracle& oracle,
                          Vertex s, Vertex t, Dist* dist_out) {
  std::vector<Dist> dist(g.num_vertices(), kInfDist);
  IndexedHeap<Dist> heap(g.num_vertices());
  dist[s] = 0;
  heap.insert_or_decrease(s, oracle.lower_bound(s, t));
  std::size_t popped = 0;
  while (!heap.empty()) {
    const auto [key, u] = heap.extract_min();
    ++popped;
    if (u == t) {
      *dist_out = dist[u];
      return popped;
    }
    for (EdgeId e = g.first_arc(u); e < g.last_arc(u); ++e) {
      const Vertex v = g.arc_target(e);
      const Dist nd = dist[u] + g.arc_weight(e);
      if (nd < dist[v]) {
        dist[v] = nd;
        heap.insert_or_decrease(v, nd + oracle.lower_bound(v, t));
      }
    }
  }
  *dist_out = kInfDist;
  return popped;
}

}  // namespace

int main(int argc, char** argv) {
  const Vertex side = argc > 1 ? static_cast<Vertex>(std::atoi(argv[1])) : 160;
  const int num_landmarks = argc > 2 ? std::atoi(argv[2]) : 8;
  const int queries = argc > 3 ? std::atoi(argv[3]) : 10;

  Graph g = assign_uniform_weights(gen::road_network(side, side, 21), 22);
  std::printf("road network: %u vertices, %llu edges\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_undirected_edges()));

  // One preprocessing pass, amortized over all landmark runs (§5.4).
  PreprocessOptions opts;
  opts.rho = 96;
  opts.k = 3;
  Timer prep;
  const SsspEngine engine(g, opts);
  std::printf("radius-stepping preprocess: %.2fs (+%.2fx edges)\n",
              prep.seconds(), engine.preprocessing().added_factor);

  // Farthest-point selection + row computation live in the oracle now; the
  // road network is undirected, so the symmetric (two-sided) bound is
  // sound and twice as tight.
  Timer tables_timer;
  LandmarkOptions lopts;
  lopts.count = static_cast<std::size_t>(num_landmarks);
  lopts.assume_symmetric = true;
  const LandmarkOracle oracle(engine, lopts);
  std::printf("%zu landmark rows in %.2fs (epoch %llu)\n",
              oracle.landmarks().size(), tables_timer.seconds(),
              static_cast<unsigned long long>(oracle.graph_epoch()));

  const SplitRng rng(5);
  QueryContext ctx;  // one warm context across all serves
  double total_ratio = 0;
  std::size_t steps_plain = 0;
  std::size_t steps_alt = 0;
  std::size_t lb_exits = 0;
  for (int qi = 0; qi < queries; ++qi) {
    const Vertex s = static_cast<Vertex>(
        rng.bounded(0, static_cast<std::uint64_t>(2 * qi), g.num_vertices()));
    const Vertex t = static_cast<Vertex>(rng.bounded(
        0, static_cast<std::uint64_t>(2 * qi + 1), g.num_vertices()));
    Dist d_ref = 0;
    Dist d_alt = 0;
    const std::size_t pops_dij = dijkstra_to_target(g, s, t, &d_ref);
    const std::size_t pops_alt = alt_to_target(g, oracle, s, t, &d_alt);

    // The engine's plain targeted serve is the exact oracle; the
    // ALT-annotated serve must return the identical distance in at most
    // as many steps.
    QueryRequest p2p;
    p2p.source = s;
    p2p.targets = {t};
    const QueryResponse plain = engine.serve(p2p, ctx);
    oracle.annotate(p2p);
    const QueryResponse assisted = engine.serve(p2p, ctx);
    steps_plain += plain.stats.steps;
    steps_alt += assisted.stats.steps;
    lb_exits += assisted.lower_bound_exits;

    if (d_ref != d_alt || d_ref != plain.targets[0].dist ||
        d_ref != assisted.targets[0].dist ||
        assisted.stats.steps > plain.stats.steps) {
      std::printf("MISMATCH on query %d\n", qi);
      return 1;
    }
    const double ratio =
        static_cast<double>(pops_dij) / static_cast<double>(pops_alt);
    total_ratio += ratio;
    std::printf("  %u -> %u: d=%llu, dijkstra pops %zu, ALT pops %zu "
                "(%.1fx fewer); serve steps %zu -> %zu\n",
                s, t, static_cast<unsigned long long>(d_ref), pops_dij,
                pops_alt, ratio, plain.stats.steps, assisted.stats.steps);
  }
  std::printf("mean search-space reduction: %.1fx\n", total_ratio / queries);
  std::printf("targeted serve steps: %zu plain -> %zu ALT-assisted "
              "(%zu lower-bound exits)\n",
              steps_plain, steps_alt, lb_exits);
  return 0;
}
