// ALT point-to-point routing (A* + Landmarks + Triangle inequality,
// Goldberg & Harrelson): the classic downstream consumer of fast
// multi-source SSSP. Radius-Stepping computes the landmark distance
// tables through the serving API (full-distances QueryRequests — one run
// per landmark, amortizing one preprocessing pass, exactly the paper's
// §5.4 multi-source regime); A* then answers point-to-point queries
// expanding a fraction of what plain Dijkstra scans. The engine's own
// targeted serve() is the exact-baseline oracle for each query.
//
//   ./alt_routing [side=160] [landmarks=8] [queries=10]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "parallel/rng.hpp"
#include "parallel/timer.hpp"
#include "pq/binary_heap.hpp"

namespace {

using namespace rs;

/// Vertices popped by a plain Dijkstra run that stops at `target`.
std::size_t dijkstra_to_target(const Graph& g, Vertex s, Vertex t,
                               Dist* dist_out) {
  std::vector<Dist> dist(g.num_vertices(), kInfDist);
  IndexedHeap<Dist> heap(g.num_vertices());
  dist[s] = 0;
  heap.insert_or_decrease(s, 0);
  std::size_t popped = 0;
  while (!heap.empty()) {
    const auto [d, u] = heap.extract_min();
    ++popped;
    if (u == t) {
      *dist_out = d;
      return popped;
    }
    for (EdgeId e = g.first_arc(u); e < g.last_arc(u); ++e) {
      const Vertex v = g.arc_target(e);
      const Dist nd = d + g.arc_weight(e);
      if (nd < dist[v]) {
        dist[v] = nd;
        heap.insert_or_decrease(v, nd);
      }
    }
  }
  *dist_out = kInfDist;
  return popped;
}

/// A* with the landmark potential pi(v) = max_l |d(l,t) - d(l,v)|
/// (admissible and consistent on undirected graphs).
std::size_t alt_to_target(const Graph& g,
                          const std::vector<std::vector<Dist>>& table,
                          Vertex s, Vertex t, Dist* dist_out) {
  auto pi = [&](Vertex v) {
    Dist best = 0;
    for (const auto& row : table) {
      if (row[v] == kInfDist || row[t] == kInfDist) continue;
      const Dist gap = row[v] > row[t] ? row[v] - row[t] : row[t] - row[v];
      if (gap > best) best = gap;
    }
    return best;
  };
  std::vector<Dist> dist(g.num_vertices(), kInfDist);
  IndexedHeap<Dist> heap(g.num_vertices());
  dist[s] = 0;
  heap.insert_or_decrease(s, pi(s));
  std::size_t popped = 0;
  while (!heap.empty()) {
    const auto [key, u] = heap.extract_min();
    ++popped;
    if (u == t) {
      *dist_out = dist[u];
      return popped;
    }
    for (EdgeId e = g.first_arc(u); e < g.last_arc(u); ++e) {
      const Vertex v = g.arc_target(e);
      const Dist nd = dist[u] + g.arc_weight(e);
      if (nd < dist[v]) {
        dist[v] = nd;
        heap.insert_or_decrease(v, nd + pi(v));
      }
    }
  }
  *dist_out = kInfDist;
  return popped;
}

}  // namespace

int main(int argc, char** argv) {
  const Vertex side = argc > 1 ? static_cast<Vertex>(std::atoi(argv[1])) : 160;
  const int num_landmarks = argc > 2 ? std::atoi(argv[2]) : 8;
  const int queries = argc > 3 ? std::atoi(argv[3]) : 10;

  Graph g = assign_uniform_weights(gen::road_network(side, side, 21), 22);
  std::printf("road network: %u vertices, %llu edges\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_undirected_edges()));

  // One preprocessing pass, amortized over all landmark runs (§5.4).
  PreprocessOptions opts;
  opts.rho = 96;
  opts.k = 3;
  Timer prep;
  const SsspEngine engine(g, opts);
  std::printf("radius-stepping preprocess: %.2fs (+%.2fx edges)\n",
              prep.seconds(), engine.preprocessing().added_factor);

  // Farthest-point landmark selection: greedily pick the vertex maximizing
  // distance to the chosen set (a standard ALT heuristic), each pick one
  // full-distances serve (the landmark table is the rare workload that
  // needs the whole O(n) vector).
  Timer tables_timer;
  QueryContext ctx;  // one warm context across all landmark runs
  const auto landmark_row = [&](Vertex lm) {
    QueryRequest req;
    req.source = lm;
    req.want_full_distances = true;
    return engine.serve(req, ctx).dist;
  };
  std::vector<std::vector<Dist>> table;
  std::vector<Vertex> landmarks{0};
  table.push_back(landmark_row(0));
  while (static_cast<int>(landmarks.size()) < num_landmarks) {
    Vertex far = 0;
    Dist best = 0;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      Dist closest = kInfDist;
      for (const auto& row : table) closest = std::min(closest, row[v]);
      if (closest != kInfDist && closest > best) {
        best = closest;
        far = v;
      }
    }
    landmarks.push_back(far);
    table.push_back(landmark_row(far));
  }
  std::printf("%d landmark tables in %.2fs\n", num_landmarks,
              tables_timer.seconds());

  const SplitRng rng(5);
  double total_ratio = 0;
  for (int qi = 0; qi < queries; ++qi) {
    const Vertex s = static_cast<Vertex>(
        rng.bounded(0, static_cast<std::uint64_t>(2 * qi), g.num_vertices()));
    const Vertex t = static_cast<Vertex>(rng.bounded(
        0, static_cast<std::uint64_t>(2 * qi + 1), g.num_vertices()));
    Dist d_ref = 0;
    Dist d_alt = 0;
    const std::size_t pops_dij = dijkstra_to_target(g, s, t, &d_ref);
    const std::size_t pops_alt = alt_to_target(g, table, s, t, &d_alt);
    // The engine's targeted serve is the exact oracle for the same pair.
    QueryRequest p2p;
    p2p.source = s;
    p2p.targets = {t};
    const QueryResponse exact = engine.serve(p2p, ctx);
    if (d_ref != d_alt || d_ref != exact.targets[0].dist) {
      std::printf("MISMATCH on query %d\n", qi);
      return 1;
    }
    const double ratio =
        static_cast<double>(pops_dij) / static_cast<double>(pops_alt);
    total_ratio += ratio;
    std::printf("  %u -> %u: d=%llu, dijkstra pops %zu, ALT pops %zu "
                "(%.1fx fewer)\n",
                s, t, static_cast<unsigned long long>(d_ref), pops_dij,
                pops_alt, ratio);
  }
  std::printf("mean search-space reduction: %.1fx\n", total_ratio / queries);
  return 0;
}
