// dynamic_weights — the dynamic-graph API tour, bottom to top:
//
//   1. apply_weight_updates: batch weight edits with undirected
//      semantics (both arc directions move together), reported as
//      per-arc ArcChange deltas.
//   2. repair_distance_row: correct one published distance row for a
//      change batch without re-running SSSP from scratch.
//   3. IncrementalPreprocessor: recompute only the dirty balls after an
//      update and splice a PreprocessResult that is bit-identical to a
//      cold rebuild.
//   4. DynamicSsspService: the serving gearbox — stage() buffers edits
//      and serve_corrected() answers exactly against them, flush()
//      re-preprocesses incrementally and swaps the epoch with zero
//      serving downtime.
//
// Every answer is verified against a from-scratch Dijkstra on the
// mutated graph; exits non-zero on any mismatch (the CTest smoke run).
#include <cstdio>
#include <random>
#include <vector>

#include "baseline/dijkstra.hpp"
#include "core/dyn_sssp.hpp"
#include "graph/generators.hpp"
#include "graph/update.hpp"
#include "graph/weights.hpp"
#include "serve/dynamic.hpp"
#include "shortcut/incremental.hpp"
#include "shortcut/shortcut.hpp"

using namespace rs;

namespace {

/// A batch of random re-weightings over arcs that exist in `g`.
std::vector<WeightUpdate> random_batch(const Graph& g, std::size_t count,
                                       std::mt19937& rng) {
  std::uniform_int_distribution<Weight> weight(1, 500);
  std::uniform_int_distribution<EdgeId> arc(0, g.num_edges() - 1);
  std::vector<WeightUpdate> batch;
  for (std::size_t i = 0; i < count; ++i) {
    const EdgeId e = arc(rng);
    Vertex u = 0;
    while (g.last_arc(u) <= e) ++u;
    batch.push_back(WeightUpdate{u, g.arc_target(e), weight(rng)});
  }
  return batch;
}

int check(bool ok, const char* what) {
  if (!ok) std::fprintf(stderr, "dynamic_weights: FAILED: %s\n", what);
  return ok ? 0 : 1;
}

}  // namespace

int main() {
  std::mt19937 rng(9);
  Graph g = gen::road_network(16, 16, /*seed=*/5);
  g = assign_uniform_weights(g, /*seed=*/6, 1, 500);
  int failures = 0;

  // --- 1 + 2: batch updates and the row-repair kernel -------------------
  std::vector<Dist> row = dijkstra(g, 0);
  UpdateApplication app = apply_weight_updates(g, random_batch(g, 6, rng));
  std::printf("updated %zu arcs (both directions of each edge)\n",
              app.changes.size());
  RepairStats rstats;
  repair_distance_row(app.graph, app.graph.transposed(), 0, app.changes,
                      row, &rstats);
  failures += check(row == dijkstra(app.graph, 0),
                    "repaired row == Dijkstra on mutated graph");
  std::printf("row repaired: %zu dirty vertices, %zu heap pops\n",
              rstats.dirty, rstats.heap_pops);
  g = std::move(app.graph);

  // --- 3: incremental re-preprocessing ----------------------------------
  PreprocessOptions popts;
  popts.rho = 12;
  popts.k = 2;
  IncrementalPreprocessor inc(g, popts);
  const IncrementalUpdateStats istats =
      inc.apply(random_batch(g, 4, rng));
  std::printf("incremental: %zu/%zu balls recomputed\n", istats.dirty_balls,
              istats.total_balls);
  const PreprocessResult cold = preprocess(inc.graph(), popts);
  failures += check(inc.result().graph == cold.graph &&
                        inc.result().radius == cold.radius,
                    "incremental result bit-identical to cold rebuild");

  // --- 4: the serving gearbox -------------------------------------------
  serve::DynamicSsspService::Options dopts;
  dopts.preprocess = popts;
  serve::DynamicSsspService dyn(inc.graph(), dopts);
  Graph shadow = inc.graph();

  const std::vector<WeightUpdate> batch = random_batch(shadow, 5, rng);
  shadow = apply_weight_updates(shadow, batch).graph;
  dyn.stage(batch);

  QueryRequest req;
  req.source = 0;
  req.targets.push_back(static_cast<Vertex>(shadow.num_vertices() - 1));
  const std::vector<Dist> want = dijkstra(shadow, 0);
  failures += check(dyn.serve_corrected(req).targets[0].dist ==
                        want[req.targets[0]],
                    "staged edits: corrected serve == Dijkstra");

  const serve::UpdateReport report = dyn.flush();
  std::printf("flushed: epoch %llu, %zu/%zu balls dirty, %.2f ms\n",
              static_cast<unsigned long long>(report.epoch),
              report.dirty_balls, report.total_balls,
              report.incremental_ms);
  failures += check(dyn.server().serve_sync(req).targets[0].dist ==
                        want[req.targets[0]],
                    "swapped epoch serves the new weights natively");
  failures += check(dyn.server().stats().epoch == 2,
                    "one flush advances the epoch once");

  if (failures != 0) return 1;
  std::printf("dynamic_weights: all checks passed\n");
  return 0;
}
