// Road-network routing: the paper's headline use case, on the serving
// API. Preprocessing is paid once (§5.4 amortization); the router then
// answers point-to-point requests — source, a few destinations, give me
// distances and turn-by-turn paths — through SsspEngine::serve(). The
// engine terminates as soon as every requested destination is settled, so
// a nearby destination costs a fraction of the rounds of a full SSSP, and
// the response is O(|targets|): no n-sized vector per request.
//
//   ./road_router [side=192] [queries=5]
#include <cstdio>
#include <cstdlib>

#include "baseline/dijkstra.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "graph/weights.hpp"
#include "parallel/rng.hpp"
#include "parallel/timer.hpp"

int main(int argc, char** argv) {
  using namespace rs;
  const Vertex side = argc > 1 ? static_cast<Vertex>(std::atoi(argv[1])) : 192;
  const int queries = argc > 2 ? std::atoi(argv[2]) : 5;

  // Synthetic road network (jittered lattice; see DESIGN.md §3) with
  // integer weights standing in for travel times.
  Graph g = assign_uniform_weights(gen::road_network(side, side, /*seed=*/7),
                                   /*seed=*/11);
  const DegreeStats deg = degree_stats(g);
  std::printf("road network: %u vertices, %llu edges, avg degree %.2f, "
              "hop diameter >= %u\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_undirected_edges()),
              deg.mean, approx_diameter(g));

  // One-time preprocessing (k = 3, rho = 64: the paper's sweet spot).
  Timer prep_timer;
  PreprocessOptions opts;
  opts.rho = 64;
  opts.k = 3;
  opts.heuristic = ShortcutHeuristic::kDP;
  const SsspEngine engine(g, opts);
  std::printf("preprocess (rho=%u, k=%u, dp): %.2fs, +%.2fx edges\n",
              opts.rho, opts.k, prep_timer.seconds(),
              engine.preprocessing().added_factor);

  // Point-to-point requests from random sources to three random
  // destinations each, served from one warm context + reused response
  // (the zero-allocation hot path).
  const SplitRng rng(123);
  QueryContext ctx;
  QueryResponse resp;
  double serve_total = 0.0;
  double dj_total = 0.0;
  const Vertex n = g.num_vertices();
  for (int qi = 0; qi < queries; ++qi) {
    QueryRequest req;
    req.source = static_cast<Vertex>(
        rng.bounded(0, static_cast<std::uint64_t>(qi), n));
    for (std::uint64_t t = 0; t < 3; ++t) {
      req.targets.push_back(
          static_cast<Vertex>(rng.bounded(1 + t, qi, n)));
    }
    req.want_paths = true;

    Timer t1;
    engine.serve(req, ctx, resp);
    serve_total += t1.seconds();

    // Cross-check the targeted answers against a full Dijkstra run.
    Timer t2;
    const std::vector<Dist> ref = dijkstra(g, req.source);
    dj_total += t2.seconds();
    std::size_t bad = 0;
    for (const TargetResult& tr : resp.targets) {
      if (tr.dist != ref[tr.target]) ++bad;
    }
    std::printf("  query %d (src %u): %zu steps%s, 3 routes (%zu/%zu/%zu "
                "hops), %s\n",
                qi, req.source, resp.stats.steps,
                resp.stats.early_exit ? ", early exit" : "",
                resp.targets[0].path.empty() ? 0
                                             : resp.targets[0].path.size() - 1,
                resp.targets[1].path.empty() ? 0
                                             : resp.targets[1].path.size() - 1,
                resp.targets[2].path.empty() ? 0
                                             : resp.targets[2].path.size() - 1,
                bad == 0 ? "matches dijkstra" : "MISMATCH");
    if (bad != 0) return 1;
  }
  std::printf("avg per request: targeted serve %.1f ms, full dijkstra "
              "%.1f ms\n",
              1e3 * serve_total / queries, 1e3 * dj_total / queries);
  return 0;
}
