// Road-network routing: the paper's headline use case. Preprocessing is
// paid once; many shortest-path queries then run with bounded steps —
// exactly the "amortize preprocessing over multiple sources" advice of
// Section 5.4.
//
//   ./road_router [side=192] [queries=5]
#include <cstdio>
#include <cstdlib>

#include "baseline/dijkstra.hpp"
#include "core/radius_stepping.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "graph/weights.hpp"
#include "parallel/rng.hpp"
#include "parallel/timer.hpp"
#include "shortcut/shortcut.hpp"

int main(int argc, char** argv) {
  using namespace rs;
  const Vertex side = argc > 1 ? static_cast<Vertex>(std::atoi(argv[1])) : 192;
  const int queries = argc > 2 ? std::atoi(argv[2]) : 5;

  // Synthetic road network (jittered lattice; see DESIGN.md §3) with
  // integer weights standing in for travel times.
  Graph g = assign_uniform_weights(gen::road_network(side, side, /*seed=*/7),
                                   /*seed=*/11);
  const DegreeStats deg = degree_stats(g);
  std::printf("road network: %u vertices, %llu edges, avg degree %.2f, "
              "hop diameter >= %u\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_undirected_edges()),
              deg.mean, approx_diameter(g));

  // One-time preprocessing (k = 3, rho = 64: the paper's sweet spot).
  Timer prep_timer;
  PreprocessOptions opts;
  opts.rho = 64;
  opts.k = 3;
  opts.heuristic = ShortcutHeuristic::kDP;
  const PreprocessResult pre = preprocess(g, opts);
  std::printf("preprocess (rho=%u, k=%u, dp): %.2fs, +%.2fx edges\n",
              opts.rho, opts.k, prep_timer.seconds(), pre.added_factor);

  // Many queries from random sources.
  const SplitRng rng(123);
  double rs_total = 0.0;
  double dj_total = 0.0;
  for (int qi = 0; qi < queries; ++qi) {
    const Vertex src =
        static_cast<Vertex>(rng.bounded(0, static_cast<std::uint64_t>(qi),
                                        g.num_vertices()));
    Timer t1;
    RunStats stats;
    const std::vector<Dist> d1 =
        radius_stepping(pre.graph, src, pre.radius, &stats);
    rs_total += t1.seconds();

    Timer t2;
    const std::vector<Dist> d2 = dijkstra(g, src);
    dj_total += t2.seconds();

    std::size_t bad = 0;
    for (Vertex v = 0; v < g.num_vertices(); ++v) {
      if (d1[v] != d2[v]) ++bad;
    }
    std::printf(
        "  query %d (src %u): %zu steps, max %zu substeps/step, %s\n", qi,
        src, stats.steps, stats.max_substeps_in_step,
        bad == 0 ? "matches dijkstra" : "MISMATCH");
    if (bad != 0) return 1;
  }
  std::printf("avg per query: radius-stepping %.1f ms, dijkstra %.1f ms\n",
              1e3 * rs_total / queries, 1e3 * dj_total / queries);
  return 0;
}
