// Landmark distance tables: run SSSP from a set of landmark vertices and
// build the distance table used by A*-style landmark heuristics
// (d(landmark, v) for all v). Radius-Stepping amortizes one preprocessing
// pass over all landmark runs — the multi-source regime where the paper
// recommends raising rho (Section 5.4).
//
//   ./landmark_distances [side=128] [landmarks=8]
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/radius_stepping.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "parallel/rng.hpp"
#include "parallel/timer.hpp"
#include "shortcut/shortcut.hpp"

int main(int argc, char** argv) {
  using namespace rs;
  const Vertex side = argc > 1 ? static_cast<Vertex>(std::atoi(argv[1])) : 128;
  const int landmarks = argc > 2 ? std::atoi(argv[2]) : 8;

  Graph g = assign_uniform_weights(gen::grid2d(side, side), /*seed=*/19);
  std::printf("grid: %u vertices, %llu edges\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_undirected_edges()));

  PreprocessOptions opts;
  opts.rho = 128;  // multi-source: spend more on preprocessing
  opts.k = 4;
  opts.heuristic = ShortcutHeuristic::kDP;
  Timer prep;
  const PreprocessResult pre = preprocess(g, opts);
  std::printf("preprocess: %.2fs, +%.2fx edges (amortized over %d runs)\n",
              prep.seconds(), pre.added_factor, landmarks);

  const SplitRng rng(77);
  std::vector<std::vector<Dist>> table;
  table.reserve(static_cast<std::size_t>(landmarks));
  Timer queries;
  std::size_t total_steps = 0;
  for (int i = 0; i < landmarks; ++i) {
    const Vertex lm = static_cast<Vertex>(
        rng.bounded(0, static_cast<std::uint64_t>(i), g.num_vertices()));
    RunStats stats;
    table.push_back(radius_stepping(pre.graph, lm, pre.radius, &stats));
    total_steps += stats.steps;
  }
  std::printf("%d landmark tables in %.2fs (avg %zu steps per source)\n",
              landmarks, queries.seconds(),
              total_steps / static_cast<std::size_t>(landmarks));

  // Triangle-inequality sanity over the table: lower bounds never exceed
  // true distances, so max over landmarks |d(l,u) - d(l,v)| <= d(u,v).
  const Vertex u = 0;
  const Vertex v = g.num_vertices() - 1;
  Dist lb = 0;
  for (const auto& row : table) {
    const Dist a = row[u];
    const Dist b = row[v];
    const Dist gap = a > b ? a - b : b - a;
    if (gap > lb) lb = gap;
  }
  std::printf("landmark lower bound d(corner, corner) >= %llu\n",
              static_cast<unsigned long long>(lb));
  return 0;
}
