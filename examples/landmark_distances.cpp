// Landmark distance tables: run SSSP from a set of landmark vertices and
// build the distance table used by A*-style landmark heuristics
// (d(landmark, v) for all v). Radius-Stepping amortizes one preprocessing
// pass over all landmark runs — the multi-source regime where the paper
// recommends raising rho (Section 5.4).
//
// Landmark tables are the one serving workload that genuinely needs the
// full O(n) distance vector per source, so the requests set
// want_full_distances, and serve_batch() runs them through the two-level
// scheduler (source-parallel across the per-worker context pool).
//
//   ./landmark_distances [side=128] [landmarks=8]
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "parallel/rng.hpp"
#include "parallel/timer.hpp"

int main(int argc, char** argv) {
  using namespace rs;
  const Vertex side = argc > 1 ? static_cast<Vertex>(std::atoi(argv[1])) : 128;
  const int landmarks = argc > 2 ? std::atoi(argv[2]) : 8;

  Graph g = assign_uniform_weights(gen::grid2d(side, side), /*seed=*/19);
  std::printf("grid: %u vertices, %llu edges\n", g.num_vertices(),
              static_cast<unsigned long long>(g.num_undirected_edges()));

  PreprocessOptions opts;
  opts.rho = 128;  // multi-source: spend more on preprocessing
  opts.k = 4;
  opts.heuristic = ShortcutHeuristic::kDP;
  Timer prep;
  const SsspEngine engine(g, opts);
  std::printf("preprocess: %.2fs, +%.2fx edges (amortized over %d runs)\n",
              prep.seconds(), engine.preprocessing().added_factor, landmarks);

  // One full-distances request per landmark, served as a batch.
  const SplitRng rng(77);
  std::vector<QueryRequest> requests;
  for (int i = 0; i < landmarks; ++i) {
    QueryRequest req;
    req.source = static_cast<Vertex>(
        rng.bounded(0, static_cast<std::uint64_t>(i), g.num_vertices()));
    req.want_full_distances = true;
    requests.push_back(std::move(req));
  }
  Timer queries;
  std::vector<QueryResponse> responses = engine.serve_batch(requests);
  std::size_t total_steps = 0;
  std::vector<std::vector<Dist>> table;
  table.reserve(responses.size());
  for (QueryResponse& resp : responses) {
    total_steps += resp.stats.steps;
    table.push_back(std::move(resp.dist));
  }
  std::printf("%d landmark tables in %.2fs (avg %zu steps per source)\n",
              landmarks, queries.seconds(),
              total_steps / static_cast<std::size_t>(landmarks));

  // Triangle-inequality sanity over the table: lower bounds never exceed
  // true distances, so max over landmarks |d(l,u) - d(l,v)| <= d(u,v).
  const Vertex u = 0;
  const Vertex v = g.num_vertices() - 1;
  Dist lb = 0;
  for (const auto& row : table) {
    const Dist a = row[u];
    const Dist b = row[v];
    const Dist gap = a > b ? a - b : b - a;
    if (gap > lb) lb = gap;
  }
  std::printf("landmark lower bound d(corner, corner) >= %llu\n",
              static_cast<unsigned long long>(lb));

  // And the cheap upper bound for the same pair is a targeted request.
  QueryRequest p2p;
  p2p.source = u;
  p2p.targets = {v};
  const QueryResponse resp = engine.serve(p2p);
  std::printf("exact d(corner, corner) = %llu (targeted serve, %zu steps%s)\n",
              static_cast<unsigned long long>(resp.targets[0].dist),
              resp.stats.steps, resp.stats.early_exit ? ", early exit" : "");
  if (resp.targets[0].dist < lb) {
    std::printf("BOUND VIOLATION\n");
    return 1;
  }
  return 0;
}
