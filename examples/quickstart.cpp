// Quickstart: build a small weighted graph, preprocess it into a
// (k, rho)-graph, run Radius-Stepping from a source, and serve a targeted
// point-to-point request through the SsspEngine API.
//
//   ./quickstart
//
// Walks through the whole public API in ~70 lines.
#include <cstdio>

#include "baseline/dijkstra.hpp"
#include "core/engine.hpp"
#include "core/radius_stepping.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "shortcut/shortcut.hpp"

int main() {
  using namespace rs;

  // 1. A graph: 32x32 grid with random integer weights in [1, 10000]
  //    (the paper's weighting protocol).
  Graph g = assign_uniform_weights(gen::grid2d(32, 32), /*seed=*/42);
  std::printf("graph: %u vertices, %llu undirected edges, L = %u\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_undirected_edges()),
              g.max_weight());

  // 2. Preprocess: rho-nearest balls + DP shortcuts make it a (k, rho)-graph.
  PreprocessOptions opts;
  opts.rho = 32;
  opts.k = 3;
  opts.heuristic = ShortcutHeuristic::kDP;
  const PreprocessResult pre = preprocess(g, opts);
  std::printf("preprocess: +%llu shortcut edges (%.2fx of original)\n",
              static_cast<unsigned long long>(pre.added_edges),
              pre.added_factor);

  // 3. Radius-Stepping from vertex 0.
  RunStats stats;
  const std::vector<Dist> dist =
      radius_stepping(pre.graph, /*source=*/0, pre.radius, &stats);
  std::printf("radius-stepping: %zu steps, %zu substeps "
              "(max %zu per step; k+2 = %u)\n",
              stats.steps, stats.substeps, stats.max_substeps_in_step,
              opts.k + 2);

  // 4. Cross-check against Dijkstra.
  const std::vector<Dist> ref = dijkstra(g, 0);
  std::size_t mismatches = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (dist[v] != ref[v]) ++mismatches;
  }
  std::printf("check vs dijkstra: %zu mismatches\n", mismatches);
  std::printf("d(0, far corner) = %llu\n",
              static_cast<unsigned long long>(dist[g.num_vertices() - 1]));

  // 5. The serving API: SsspEngine owns the preprocessing; a targeted
  //    QueryRequest gets distance + path to the far corner and stops as
  //    soon as it is settled (early termination; O(|targets|) response).
  const SsspEngine engine(g, opts);
  QueryRequest req;
  req.source = 0;
  req.targets = {g.num_vertices() - 1};
  req.want_paths = true;
  const QueryResponse resp = engine.serve(req);
  const TargetResult& corner = resp.targets[0];
  std::printf("serve: d(0, %u) = %llu over a %zu-hop path (%zu steps%s)\n",
              corner.target, static_cast<unsigned long long>(corner.dist),
              corner.path.size() - 1, resp.stats.steps,
              resp.stats.early_exit ? ", early exit" : "");
  if (corner.dist != ref[corner.target]) ++mismatches;
  return mismatches == 0 ? 0 : 1;
}
