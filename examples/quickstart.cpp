// Quickstart: build a small weighted graph, preprocess it into a
// (k, rho)-graph, and run Radius-Stepping from a source.
//
//   ./quickstart
//
// Walks through the whole public API in ~50 lines.
#include <cstdio>

#include "baseline/dijkstra.hpp"
#include "core/radius_stepping.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"
#include "shortcut/shortcut.hpp"

int main() {
  using namespace rs;

  // 1. A graph: 32x32 grid with random integer weights in [1, 10000]
  //    (the paper's weighting protocol).
  Graph g = assign_uniform_weights(gen::grid2d(32, 32), /*seed=*/42);
  std::printf("graph: %u vertices, %llu undirected edges, L = %u\n",
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_undirected_edges()),
              g.max_weight());

  // 2. Preprocess: rho-nearest balls + DP shortcuts make it a (k, rho)-graph.
  PreprocessOptions opts;
  opts.rho = 32;
  opts.k = 3;
  opts.heuristic = ShortcutHeuristic::kDP;
  const PreprocessResult pre = preprocess(g, opts);
  std::printf("preprocess: +%llu shortcut edges (%.2fx of original)\n",
              static_cast<unsigned long long>(pre.added_edges),
              pre.added_factor);

  // 3. Radius-Stepping from vertex 0.
  RunStats stats;
  const std::vector<Dist> dist =
      radius_stepping(pre.graph, /*source=*/0, pre.radius, &stats);
  std::printf("radius-stepping: %zu steps, %zu substeps "
              "(max %zu per step; k+2 = %u)\n",
              stats.steps, stats.substeps, stats.max_substeps_in_step,
              opts.k + 2);

  // 4. Cross-check against Dijkstra.
  const std::vector<Dist> ref = dijkstra(g, 0);
  std::size_t mismatches = 0;
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (dist[v] != ref[v]) ++mismatches;
  }
  std::printf("check vs dijkstra: %zu mismatches\n", mismatches);
  std::printf("d(0, far corner) = %llu\n",
              static_cast<unsigned long long>(dist[g.num_vertices() - 1]));
  return mismatches == 0 ? 0 : 1;
}
