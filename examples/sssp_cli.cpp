// sssp_cli — command-line front end for the whole library. The tool a user
// reaches for to run the paper's pipeline on their own graphs (including
// the original DIMACS/SNAP datasets, via the .gr / edge-list readers).
//
//   sssp_cli gen --type grid2d --side 200 --weights 10000 -o g.gr
//   sssp_cli stats g.gr
//   sssp_cli preprocess g.gr --rho 64 --k 3 --heuristic dp -o g.pre
//   sssp_cli query g.gr g.pre --source 0 --targets 39999,1250 --engine flat
//   sssp_cli run g.gr --algo all --source 0
//
// The query subcommand is a targeted serve: with --targets (or --target)
// it sends one QueryRequest and prints per-target distance + path without
// ever materializing the O(n) distance vector — and the engine terminates
// early once every target is settled.
#include <cstdio>
#include <cctype>
#include <cstring>
#include <limits>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "baseline/bellman_ford.hpp"
#include "baseline/bfs.hpp"
#include "baseline/delta_stepping.hpp"
#include "baseline/dijkstra.hpp"
#include "core/engine.hpp"
#include "core/radii.hpp"
#include "core/radius_stepping.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "graph/weights.hpp"
#include "parallel/timer.hpp"
#include "shortcut/serialize.hpp"

namespace {

using namespace rs;

/// Minimal --flag value parser: flags() ["--rho"] etc.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string a = argv[i];
      const bool is_flag =
          a.size() >= 2 && a[0] == '-' &&
          !std::isdigit(static_cast<unsigned char>(a[1]));
      if (is_flag && i + 1 < argc) {
        kv_[a] = argv[++i];
      } else {
        positional_.push_back(a);
      }
    }
  }
  std::string get(const std::string& key, const std::string& dflt) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? dflt : it->second;
  }
  long get_int(const std::string& key, long dflt) const {
    const auto it = kv_.find(key);
    return it == kv_.end() ? dflt : std::stol(it->second);
  }
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

Graph load_graph(const std::string& path) {
  if (path.size() > 3 && path.substr(path.size() - 3) == ".gr") {
    return io::read_dimacs_file(path);
  }
  return io::read_edge_list_file(path);
}

int cmd_gen(const Args& args) {
  const std::string type = args.get("--type", "grid2d");
  const Vertex side = static_cast<Vertex>(args.get_int("--side", 100));
  const Vertex n = static_cast<Vertex>(args.get_int("--n", 10000));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int("--seed", 1));
  const Weight wmax = static_cast<Weight>(args.get_int("--weights", 0));
  const std::string out = args.get("-o", args.get("--out", "graph.gr"));

  Graph g;
  if (type == "grid2d") {
    g = gen::grid2d(side, side);
  } else if (type == "grid3d") {
    g = gen::grid3d(side, side, side);
  } else if (type == "road") {
    g = gen::road_network(side, side, seed);
  } else if (type == "ba" || type == "web") {
    g = gen::barabasi_albert(n, static_cast<Vertex>(args.get_int("--deg", 5)),
                             seed);
  } else if (type == "rmat") {
    g = largest_component(
        gen::rmat(static_cast<std::uint32_t>(args.get_int("--scale", 14)),
                  static_cast<EdgeId>(args.get_int("--factor", 8)), seed));
  } else if (type == "er") {
    g = largest_component(
        gen::erdos_renyi(n, static_cast<EdgeId>(args.get_int("--m", 4 * n)),
                         seed));
  } else if (type == "rgg") {
    const double radius = args.get_int("--rgg-radius-milli", 50) / 1000.0;
    g = largest_component(gen::random_geometric(n, radius, seed));
  } else {
    std::fprintf(stderr, "unknown --type %s\n", type.c_str());
    return 1;
  }
  if (wmax > 0) g = assign_uniform_weights(g, seed + 7, 1, wmax);
  io::write_dimacs_file(g, out);
  std::printf("wrote %s: %u vertices, %llu edges\n", out.c_str(),
              g.num_vertices(),
              static_cast<unsigned long long>(g.num_undirected_edges()));
  return 0;
}

int cmd_stats(const Args& args) {
  if (args.positional().empty()) {
    std::fprintf(stderr, "usage: sssp_cli stats <graph>\n");
    return 1;
  }
  const Graph g = load_graph(args.positional()[0]);
  const DegreeStats d = degree_stats(g);
  std::printf("vertices    %u\n", g.num_vertices());
  std::printf("edges       %llu\n",
              static_cast<unsigned long long>(g.num_undirected_edges()));
  std::printf("degree      min %llu  max %llu  mean %.2f\n",
              static_cast<unsigned long long>(d.min),
              static_cast<unsigned long long>(d.max), d.mean);
  std::printf("weights     min %u  max %u (L)\n", g.min_weight(),
              g.max_weight());
  std::printf("connected   %s\n", is_connected(g) ? "yes" : "no");
  std::printf("diameter    >= %u hops (double sweep)\n", approx_diameter(g));
  return 0;
}

int cmd_preprocess(const Args& args) {
  if (args.positional().empty()) {
    std::fprintf(stderr, "usage: sssp_cli preprocess <graph> [--rho R] [--k K] "
                         "[--heuristic dp|greedy|full|none] [-o out.pre]\n");
    return 1;
  }
  const Graph g = load_graph(args.positional()[0]);
  PreprocessOptions opts;
  opts.rho = static_cast<Vertex>(args.get_int("--rho", 64));
  opts.k = static_cast<Vertex>(args.get_int("--k", 3));
  opts.settle_ties = args.get_int("--settle-ties", 1) != 0;
  const std::string h = args.get("--heuristic", "dp");
  if (h == "dp") {
    opts.heuristic = ShortcutHeuristic::kDP;
  } else if (h == "greedy") {
    opts.heuristic = ShortcutHeuristic::kGreedy;
  } else if (h == "full") {
    opts.heuristic = ShortcutHeuristic::kFull1Rho;
  } else if (h == "none") {
    opts.heuristic = ShortcutHeuristic::kNone;
  } else {
    std::fprintf(stderr, "unknown --heuristic %s\n", h.c_str());
    return 1;
  }
  Timer t;
  const PreprocessResult pre = preprocess(g, opts);
  const std::string out = args.get("-o", args.get("--out", "graph.pre"));
  save_preprocessing_file(pre, out);
  std::printf("preprocessed in %.2fs: +%llu edges (%.3fx), wrote %s\n",
              t.seconds(), static_cast<unsigned long long>(pre.added_edges),
              pre.added_factor, out.c_str());
  return 0;
}

/// Strict integer flag: absent -> `dflt`; present -> must parse fully as
/// an integer in [lo, hi]. Rejects what std::stol would let slide —
/// trailing junk ("5x") — and, crucially, negatives where a vertex id is
/// expected: `--source -5` historically cast straight to an unsigned
/// Vertex and queried from vertex 4294967291 without a word.
long get_checked(const Args& args, const std::string& key, long dflt,
                 long lo, long hi) {
  const std::string raw = args.get(key, "");
  if (raw.empty()) return dflt;
  std::size_t used = 0;
  long v = 0;
  try {
    v = std::stol(raw, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument(key + " expects an integer, got '" + raw +
                                "'");
  }
  if (used != raw.size()) {
    throw std::invalid_argument(key + " expects an integer, got '" + raw +
                                "'");
  }
  if (v < lo || v > hi) {
    throw std::invalid_argument(key + " out of range [" +
                                std::to_string(lo) + ", " +
                                std::to_string(hi) + "]: " + raw);
  }
  return v;
}

/// Parses "a,b,c" into vertex ids (throws std::invalid_argument /
/// std::out_of_range on garbage, trailing junk, or ids that do not fit a
/// Vertex — caught by main's handler).
std::vector<Vertex> parse_vertex_list(const std::string& csv) {
  std::vector<Vertex> out;
  std::size_t pos = 0;
  while (pos < csv.size()) {
    std::size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    const std::string item = csv.substr(pos, comma - pos);
    if (!item.empty()) {
      std::size_t used = 0;
      const unsigned long long v = std::stoull(item, &used);
      if (used != item.size() ||
          v > std::numeric_limits<Vertex>::max()) {
        throw std::invalid_argument("bad vertex id in --targets: " + item);
      }
      out.push_back(static_cast<Vertex>(v));
    }
    pos = comma + 1;
  }
  return out;
}

int cmd_query(const Args& args) {
  if (args.positional().size() < 2) {
    std::fprintf(stderr,
                 "usage: sssp_cli query <graph> <pre> --source S "
                 "[--targets A,B,C | --target T] [--paths 0|1] "
                 "[--engine flat|bst|bstflat|fragment] [--fragments F]\n");
    return 1;
  }
  const Graph g = load_graph(args.positional()[0]);
  SsspEngine engine(g, load_preprocessing_file(args.positional()[1]));

  constexpr long kMaxVertex =
      static_cast<long>(std::numeric_limits<Vertex>::max());
  QueryRequest req;
  req.source = static_cast<Vertex>(
      get_checked(args, "--source", 0, 0, kMaxVertex));
  req.targets = parse_vertex_list(args.get("--targets", ""));
  const long single = get_checked(args, "--target", -1, 0, kMaxVertex);
  if (single >= 0) req.targets.push_back(static_cast<Vertex>(single));
  req.want_paths =
      !req.targets.empty() && get_checked(args, "--paths", 1, 0, 1) != 0;
  // No targets: a classic full-SSSP probe (stats + full vector held only
  // long enough to report). With targets the response is O(|targets|).
  req.want_full_distances = req.targets.empty();
  const std::string which = args.get("--engine", "flat");
  if (which == "bst") {
    req.engine = QueryEngine::kBst;
  } else if (which == "bstflat") {
    req.engine = QueryEngine::kBstFlat;
  } else if (which == "fragment") {
    req.engine = QueryEngine::kFragment;
    // 0 = the RS_FRAGMENTS env default (falls back to the worker count).
    engine.enable_fragments(static_cast<std::size_t>(
        get_checked(args, "--fragments", 0, 0, 1 << 20)));
  } else if (which == "flat") {
    req.engine = QueryEngine::kFlat;
  } else {
    throw std::invalid_argument("unknown --engine " + which +
                                " (flat|bst|bstflat|fragment)");
  }

  Timer t;
  const QueryResponse resp = engine.serve(req);
  std::printf("query from %u: %.1f ms, %zu steps%s, %zu substeps "
              "(max %zu/step), %zu settled\n",
              req.source, t.millis(), resp.stats.steps,
              resp.stats.early_exit ? " (early exit)" : "",
              resp.stats.substeps, resp.stats.max_substeps_in_step,
              resp.stats.settled);

  for (const TargetResult& tr : resp.targets) {
    if (tr.dist == kInfDist) {
      std::printf("d(%u, %u) = unreachable\n", req.source, tr.target);
      continue;
    }
    std::printf("d(%u, %u) = %llu\n", req.source, tr.target,
                static_cast<unsigned long long>(tr.dist));
    if (!req.want_paths) continue;
    const std::vector<Vertex>& path = tr.path;
    std::printf("path (%zu hops):", path.size() - 1);
    const std::size_t show = std::min<std::size_t>(path.size(), 12);
    for (std::size_t i = 0; i < show; ++i) std::printf(" %u", path[i]);
    if (path.size() > show) std::printf(" ... %u", path.back());
    std::printf("\n");
  }
  return 0;
}

int cmd_run(const Args& args) {
  if (args.positional().empty()) {
    std::fprintf(stderr, "usage: sssp_cli run <graph> [--algo all|dijkstra|"
                         "delta|bf|bfs|rs] [--source S] [--rho R]\n");
    return 1;
  }
  const Graph g = load_graph(args.positional()[0]);
  const Vertex src = static_cast<Vertex>(get_checked(
      args, "--source", 0, 0,
      static_cast<long>(std::numeric_limits<Vertex>::max())));
  const std::string algo = args.get("--algo", "all");
  const Vertex rho = static_cast<Vertex>(args.get_int("--rho", 64));

  std::vector<Dist> ref;
  auto report = [&](const char* name, const std::vector<Dist>& d, double ms) {
    std::size_t bad = 0;
    if (!ref.empty()) {
      for (Vertex v = 0; v < g.num_vertices(); ++v) {
        if (d[v] != ref[v]) ++bad;
      }
    }
    std::printf("  %-16s %9.1f ms%s\n", name, ms,
                ref.empty() ? "  (reference)"
                            : (bad == 0 ? "  ok" : "  MISMATCH"));
    if (ref.empty()) ref = d;
    return bad;
  };

  std::size_t mismatches = 0;
  if (algo == "all" || algo == "dijkstra") {
    Timer t;
    const auto d = dijkstra(g, src);
    mismatches += report("dijkstra", d, t.millis());
  }
  if (algo == "all" || algo == "delta") {
    Timer t;
    const auto d = delta_stepping(g, src);
    mismatches += report("delta-stepping", d, t.millis());
  }
  if (algo == "all" || algo == "bf") {
    Timer t;
    const auto d = bellman_ford_parallel(g, src);
    mismatches += report("bellman-ford", d, t.millis());
  }
  if (algo == "all" || algo == "rs") {
    PreprocessOptions opts;
    opts.rho = rho;
    Timer tp;
    const PreprocessResult pre = preprocess(g, opts);
    const double prep_ms = tp.millis();
    Timer t;
    RunStats stats;
    const auto d = radius_stepping(pre.graph, src, pre.radius, &stats);
    mismatches += report("radius-stepping", d, t.millis());
    std::printf("    (preprocess %.1f ms, +%.2fx edges, %zu steps)\n",
                prep_ms, pre.added_factor, stats.steps);
  }
  return mismatches == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: sssp_cli <gen|stats|preprocess|query|run> ...\n");
    return 1;
  }
  const std::string cmd = argv[1];
  if (cmd == "help" || cmd == "--help" || cmd == "-h") {
    std::printf("usage: sssp_cli <gen|stats|preprocess|query|run> ...\n");
    return 0;
  }
  const Args args(argc, argv, 2);
  try {
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "preprocess") return cmd_preprocess(args);
    if (cmd == "query") return cmd_query(args);
    if (cmd == "run") return cmd_run(args);
    std::fprintf(stderr, "unknown command %s\n", cmd.c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
  }
  return 1;
}
