#!/usr/bin/env python3
"""Compare BENCH_*.json perf results against a baseline run.

Usage:
    compare_bench.py <baseline-dir> <current-dir> [--threshold 0.20]
                     [--fail-threshold 0.35] [--fail-on-regression]
                     [--noise-file scripts/bench_noise.json]

Both directories hold BENCH_<bench>.json files in the schema documented in
README "Perf tracking" — either directly or in nested subdirectories
(CI's bench-smoke job runs every bench several times into run1/run2/...
subdirectories; all files under a side are collected recursively and
duplicate metrics are aggregated by MEDIAN, which is what makes a hard
gate viable on noisy shared runners).

Metrics are matched by (bench, metric name, sorted labels) and compared
when the unit has a known direction: rates (queries/sec, vertices/sec,
balls/sec) and ratios (e.g. the serving cache's hit_rate), where lower =
slower = regression, and latencies (us, ms), where HIGHER is the
regression — this is how the serving daemon's
p50/p99/p999 tail latencies are gated. Two bands:

  * a move-for-the-worse beyond --threshold (default 20%) prints a
    REGRESSION warning;
  * beyond --fail-threshold (when given; CI uses 35%) it is a hard
    failure — the script exits 1.

A --noise-file adds a PER-METRIC allowance on top of both thresholds: the
JSON maps "<bench>.<metric>" (or "<metric>" for all benches, or "*" as a
global default) to an extra relative band, e.g.

    {"loadgen.p999_us": 0.25, "p99_us": 0.10, "*": 0.0}

so a metric known to be noisy at full scale (tail latencies on shared
runners) only warns beyond threshold+allowance and only fails beyond
fail-threshold+allowance. This is what lets the nightly leg run as a hard
gate instead of warn-only. Most-specific key wins.

New or vanished metrics are listed informationally. --fail-on-regression
additionally turns warn-band regressions into a nonzero exit.
"""

import argparse
import json
import pathlib
import statistics
import sys

# Higher is better: a drop is a regression.
RATE_UNITS = {"queries/sec", "vertices/sec", "balls/sec", "ratio"}
# Lower is better (latencies): a rise is a regression.
LATENCY_UNITS = {"us", "ms"}


def load_metrics(directory):
    """Maps (bench, metric, labels-tuple) -> (median value, unit).

    Scans `directory` recursively, so a side may be a single run or a
    directory of repetition subdirectories; repeated observations of the
    same metric key are reduced to their median.
    """
    observed = {}
    for path in sorted(pathlib.Path(directory).rglob("BENCH_*.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"warning: skipping unreadable {path}: {err}")
            continue
        bench = doc.get("bench", path.stem)
        for metric in doc.get("metrics", []):
            try:
                name = metric["name"]
                value = float(metric["value"])
            except (KeyError, TypeError, ValueError):
                continue
            labels = tuple(sorted((metric.get("labels") or {}).items()))
            key = (bench, name, labels)
            values, _ = observed.setdefault(key, ([], metric.get("unit", "")))
            values.append(value)
    return {key: (statistics.median(values), unit)
            for key, (values, unit) in observed.items()}


def label_str(labels):
    return ",".join(f"{k}={v}" for k, v in labels) or "-"


def load_noise(path):
    """Loads the per-metric allowance map; {} when no file is given."""
    if path is None:
        return {}
    try:
        doc = json.loads(pathlib.Path(path).read_text())
    except (OSError, json.JSONDecodeError) as err:
        print(f"warning: ignoring unreadable noise file {path}: {err}")
        return {}
    noise = {}
    for key, value in doc.items():
        if key.startswith("_"):
            continue  # comment keys
        try:
            noise[key] = float(value)
        except (TypeError, ValueError):
            print(f"warning: noise file {path}: non-numeric allowance "
                  f"for {key!r}; ignored")
    return noise


def allowance_for(noise, bench, name):
    """Most-specific allowance: bench.metric > metric > '*' > 0."""
    for key in (f"{bench}.{name}", name, "*"):
        if key in noise:
            return noise[key]
    return 0.0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.20,
                        help="relative drop that prints a warning")
    parser.add_argument("--fail-threshold", type=float, default=None,
                        help="relative drop that fails the run (exit 1)")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 on warn-band regressions too")
    parser.add_argument("--noise-file", default=None,
                        help="JSON map of per-metric extra allowance "
                             "(bench.metric, metric, or '*')")
    args = parser.parse_args()
    noise = load_noise(args.noise_file)

    base = load_metrics(args.baseline)
    cur = load_metrics(args.current)
    if not base:
        print(f"no baseline metrics under {args.baseline}; nothing to compare")
        return 0
    if not cur:
        print(f"no current metrics under {args.current}; nothing to compare")
        return 0

    regressions = []
    failures = []
    improvements = 0
    compared = 0
    print(f"{'bench':24} {'metric':20} {'labels':40} "
          f"{'baseline':>12} {'current':>12} {'delta':>8}")
    for key in sorted(base):
        if key not in cur:
            continue
        (old, unit) = base[key]
        (new, _) = cur[key]
        if old <= 0:
            continue
        if unit in RATE_UNITS:
            direction = 1.0  # a drop is a regression
        elif unit in LATENCY_UNITS:
            direction = -1.0  # a rise is a regression
        else:
            continue
        compared += 1
        delta = (new - old) / old
        # Positive `worse` always means "moved in the bad direction".
        worse = -direction * delta
        slack = allowance_for(noise, key[0], key[1])
        flag = ""
        if (args.fail_threshold is not None
                and worse > args.fail_threshold + slack):
            flag = "  << FAIL"
            failures.append((key, old, new, delta))
        elif worse > args.threshold + slack:
            flag = "  << REGRESSION"
            regressions.append((key, old, new, delta))
        elif worse < -args.threshold:
            improvements += 1
            flag = "  (improved)"
        bench, name, labels = key
        print(f"{bench:24} {name:20} {label_str(labels):40} "
              f"{old:12.1f} {new:12.1f} {delta:+7.1%}{flag}")

    missing = sorted(k for k in base if k not in cur)
    added = sorted(k for k in cur if k not in base)
    if missing:
        print(f"\n{len(missing)} baseline metric(s) absent from the current "
              "run (renamed or removed):")
        for bench, name, labels in missing[:10]:
            print(f"  - {bench} {name} [{label_str(labels)}]")
    if added:
        print(f"\n{len(added)} new metric(s) with no baseline yet.")

    print(f"\ncompared {compared} directional metric(s) (medians): "
          f"{len(failures)} hard failure(s), "
          f"{len(regressions)} warn-band regression(s) beyond "
          f"{args.threshold:.0%}, {improvements} improvement(s)")
    if regressions:
        print("\nPERF REGRESSION WARNING — worse than the previous run:")
        for (bench, name, labels), old, new, delta in regressions:
            print(f"  {bench} {name} [{label_str(labels)}]: "
                  f"{old:.1f} -> {new:.1f} ({delta:+.1%})")
    if failures:
        print(f"\nPERF GATE FAILURE — median moved beyond "
              f"{args.fail_threshold:.0%}:")
        for (bench, name, labels), old, new, delta in failures:
            print(f"  {bench} {name} [{label_str(labels)}]: "
                  f"{old:.1f} -> {new:.1f} ({delta:+.1%})")
        return 1
    if regressions and args.fail_on_regression:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
